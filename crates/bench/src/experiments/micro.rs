//! **§7.2.2 micro-benchmark** — fast-path vs slow-path checking time over a
//! window of ~100 TIP packets (paper: slow ≈ 0.23 ms ≈ 60× the fast path).

use crate::table::{fmt, Table};
use fg_cfg::OCfg;
use fg_cpu::CostModel;
use fg_ipt::fast;
use flowguard::{slowpath, FlowGuardConfig};
use std::collections::HashSet;
use std::time::Instant;

/// The comparison result.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// TIPs in the measured window.
    pub tips: usize,
    /// Fast-path simulated cycles.
    pub fast_cycles: f64,
    /// Slow-path simulated cycles.
    pub slow_cycles: f64,
    /// Fast-path wall time (µs) of our implementation.
    pub fast_wall_us: f64,
    /// Slow-path wall time (µs) of our implementation.
    pub slow_wall_us: f64,
}

impl MicroResult {
    /// Simulated slow/fast ratio.
    pub fn sim_ratio(&self) -> f64 {
        self.slow_cycles / self.fast_cycles
    }

    /// Wall-clock slow/fast ratio.
    pub fn wall_ratio(&self) -> f64 {
        self.slow_wall_us / self.fast_wall_us
    }
}

/// Captures a benign nginx trace whose tail holds roughly 100 TIPs, then
/// times both paths on it.
pub fn run() -> MicroResult {
    let w = fg_workloads::nginx_patched();
    let d = flowguard::Deployment::analyze(&w.image);
    let mut d = d;
    d.train(std::slice::from_ref(&w.default_input));
    let ocfg = OCfg::build(&w.image);
    let cost = CostModel::calibrated();

    // Produce a trace.
    let mut m = fg_cpu::Machine::new(&w.image, 0x4000);
    let mut unit =
        fg_cpu::IptUnit::flowguard(0x4000, fg_ipt::Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = fg_cpu::TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, crate::measure::BUDGET);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();

    // Trim to a ~100-TIP window from the first PSB.
    let scan_all = fast::scan(&bytes).expect("scan");
    let window_bytes = if scan_all.tip_count() > 100 {
        // find byte offset after which ~100 TIPs remain: rescan incrementally
        let mut cut = 0;
        let mut parser = fg_ipt::PacketParser::new(&bytes);
        let mut seen = 0usize;
        let keep = scan_all.tip_count() - 100;
        while let Some(Ok(p)) = parser.next_packet() {
            if matches!(p.packet, fg_ipt::Packet::Tip { .. }) {
                seen += 1;
                if seen == keep {
                    cut = p.offset + p.len;
                    break;
                }
            }
        }
        let mut sub = fg_ipt::PacketParser::at(&bytes, cut);
        match sub.sync_forward() {
            Some(off) => &bytes[off..],
            None => &bytes[..],
        }
    } else {
        &bytes[..]
    };

    let cfg =
        FlowGuardConfig { pkt_count: 100, require_module_stride: false, ..Default::default() };
    let cache = HashSet::new();

    // Fast path: simulated + wall clock (averaged over repeats).
    const REPS: u32 = 200;
    let t0 = Instant::now();
    let mut fast_cycles = 0.0;
    let mut tips = 0;
    for _ in 0..REPS {
        let scan = fast::scan(window_bytes).expect("scan");
        tips = scan.tip_count();
        let r = flowguard::fastpath::check(
            &d.itc,
            &cache,
            &w.image,
            &scan,
            &cfg,
            cost.edge_check_cycles,
        );
        fast_cycles = window_bytes.len() as f64 * cost.packet_scan_byte_cycles + r.check_cycles;
    }
    let fast_wall_us = t0.elapsed().as_secs_f64() * 1e6 / REPS as f64;

    let t1 = Instant::now();
    let mut slow_cycles = 0.0;
    for _ in 0..REPS {
        let r = slowpath::check(&w.image, &ocfg, window_bytes, &cost);
        slow_cycles = r.decode_cycles;
    }
    let slow_wall_us = t1.elapsed().as_secs_f64() * 1e6 / REPS as f64;

    MicroResult { tips, fast_cycles, slow_cycles, fast_wall_us, slow_wall_us }
}

/// Prints the comparison.
pub fn print() {
    let r = run();
    let mut t = Table::new(&["path", "simulated cycles", "wall time (µs)"]);
    t.row(vec!["fast".into(), fmt(r.fast_cycles, 0), fmt(r.fast_wall_us, 1)]);
    t.row(vec!["slow".into(), fmt(r.slow_cycles, 0), fmt(r.slow_wall_us, 1)]);
    t.print(&format!("§7.2.2 — checking time for a window of {} TIPs", r.tips));
    println!(
        "\nslow/fast ratio: {:.0}x simulated, {:.0}x wall-clock (paper: ~60x, 0.23 ms slow path)",
        r.sim_ratio(),
        r.wall_ratio()
    );
}
