//! **Ablation: RET compression (`DisRETC`)** — why FlowGuard's §5.1
//! configuration disables it.
//!
//! With `DisRETC = 0` the hardware compresses a matching return to a single
//! TNT bit. That shrinks the trace — but returns vanish from the TIP
//! stream, so the fast path loses exactly the backward edges ROP abuses.
//! FlowGuard therefore sets `DisRETC = 1` and pays the extra TIP bytes.

use crate::table::{fmt, Table};
use fg_cpu::{IptUnit, Machine, TraceUnit};
use fg_ipt::msr::{IptMsrs, RtitCtl};
use fg_ipt::topa::Topa;

/// Result of tracing one workload both ways.
#[derive(Debug, Clone)]
pub struct RetcResult {
    /// Workload name.
    pub name: String,
    /// Trace bytes with `DisRETC = 1` (FlowGuard's configuration).
    pub bytes_no_compression: u64,
    /// Trace bytes with `DisRETC = 0`.
    pub bytes_compressed: u64,
    /// TIPs visible to the fast path without compression.
    pub tips_no_compression: usize,
    /// TIPs visible with compression (returns hidden).
    pub tips_compressed: usize,
}

fn trace(w: &fg_workloads::Workload, dis_retc: bool) -> (u64, usize) {
    let cr3 = 0x4000;
    let mut ctl = RtitCtl::flowguard_default();
    ctl.set_dis_retc(dis_retc);
    let msrs = IptMsrs { ctl, cr3_match: cr3, ..Default::default() };
    let mut unit = IptUnit::with_msrs(msrs, Topa::two_regions(1 << 23).expect("topa"));
    unit.start(w.image.entry(), cr3);
    let mut m = Machine::new(&w.image, cr3);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, crate::measure::BUDGET);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
    let scan = fg_ipt::fast::scan(&bytes).expect("scan");
    (bytes.len() as u64, scan.tip_count())
}

/// Runs the ablation over a few workloads.
pub fn run() -> Vec<RetcResult> {
    [fg_workloads::tar(), fg_workloads::scp(), fg_workloads::spec_by_name("gobmk").expect("gobmk")]
        .iter()
        .map(|w| {
            let (b1, t1) = trace(w, true);
            let (b0, t0) = trace(w, false);
            RetcResult {
                name: w.name.clone(),
                bytes_no_compression: b1,
                bytes_compressed: b0,
                tips_no_compression: t1,
                tips_compressed: t0,
            }
        })
        .collect()
}

/// Prints the ablation.
pub fn print() {
    let rows = run();
    let mut t = Table::new(&[
        "workload",
        "trace bytes (DisRETC=1)",
        "trace bytes (RETC on)",
        "saved",
        "TIPs visible",
        "TIPs w/ RETC",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            r.bytes_no_compression.to_string(),
            r.bytes_compressed.to_string(),
            format!(
                "{}%",
                fmt((1.0 - r.bytes_compressed as f64 / r.bytes_no_compression as f64) * 100.0, 0)
            ),
            r.tips_no_compression.to_string(),
            r.tips_compressed.to_string(),
        ]);
        assert!(r.bytes_compressed < r.bytes_no_compression, "{}: compression shrinks", r.name);
        assert!(
            (r.tips_compressed as f64) < r.tips_no_compression as f64 * 0.6,
            "{}: compression hides the returns from the TIP stream ({} vs {})",
            r.name,
            r.tips_compressed,
            r.tips_no_compression
        );
    }
    t.print("ablation — RET compression: smaller traces, invisible returns (why DisRETC=1)");
}
