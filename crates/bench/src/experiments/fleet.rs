//! **Fleet-scale enforcement benchmarks** — 64 concurrent protected
//! processes under one [`FleetSupervisor`]: shared deployment artifacts,
//! per-CR3 tracing, and deferred check scheduling, measured end to end.
//!
//! Emits `BENCH_fleet.json`, tracked in CI against a checked-in baseline.
//! Absolute checks/sec is informational (wall-clock); the gated metrics are
//! deterministic properties of the fleet run:
//!
//! * artifact-cache hit rate ≥ 0.9 — 64 processes over 4 distinct images
//!   must share artifacts (60 of 64 lookups hit);
//! * p99 check latency (modeled cycles) within 2× of the solo baseline —
//!   the same four processes run alone under the same scheduler policy;
//! * zero dropped checks — backpressure sheds to inline execution, never
//!   drops, and every deferred drain executes;
//! * 100% of fleet-wide attacks detected — five members running the five
//!   distinct `fg-attacks` payloads concurrently are all caught.

use crate::table::{fmt, Table};
use fg_attacks::{
    find_gadgets, history_flush, kbouncer_evasion, ret_to_lib, rop_write, srop_execve,
    trained_vulnerable_nginx,
};
use fg_workloads::Workload;
use flowguard::{FleetConfig, FleetSupervisor};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The default artifact file name.
pub const JSON_PATH: &str = "BENCH_fleet.json";

/// Concurrent processes in the headline measurement.
pub const FLEET_SIZE: usize = 64;

/// Requests each member's seeded load stream carries.
const REQUESTS_PER_MEMBER: usize = 8;

/// One row of the scaling table (checks/sec vs process count).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Concurrent processes.
    pub processes: usize,
    /// Endpoint checks across the fleet.
    pub checks: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_sec: f64,
    /// Checks per wall-clock second (informational).
    pub checks_per_sec: f64,
}

/// One full measurement, serialised as `BENCH_fleet.json`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FleetBench {
    /// Concurrent processes in the headline run.
    pub processes: usize,
    /// Distinct binaries behind them.
    pub distinct_images: usize,
    /// Artifact-cache hit rate (gated ≥ 0.9).
    pub artifact_cache_hit_rate: f64,
    /// Endpoint checks across the headline fleet.
    pub checks_total: u64,
    /// Checks per wall-clock second at 64 processes (informational).
    pub checks_per_sec: f64,
    /// Fleet-wide p99 check latency, modeled cycles.
    pub p99_check_latency_cycles: u64,
    /// Solo baseline: the first four members (one per image) run alone
    /// under the same scheduler policy, latency histograms merged.
    pub solo_p99_check_latency_cycles: u64,
    /// `fleet p99 / solo p99` (gated ≤ 2.0).
    pub p99_latency_ratio: f64,
    /// Checks or drains dropped by the scheduler (gated == 0).
    pub dropped_checks: u64,
    /// Jobs shed to synchronous inline execution under backpressure.
    pub shed_inline: u64,
    /// Background drains deferred onto the scheduler.
    pub drains_enqueued: u64,
    /// Deferred drains executed by the supervisor (must equal enqueued).
    pub drains_executed: u64,
    /// Context switches across the headline run.
    pub context_switches: u64,
    /// Attack payloads launched concurrently in the detection fleet.
    pub attacks_total: usize,
    /// Attacks FlowGuard detected.
    pub attacks_detected: usize,
    /// `detected / total` (gated == 1.0).
    pub attacks_detected_fraction: f64,
    /// Checks/sec vs process count (1 / 8 / 64).
    #[serde(default)]
    pub scaling: Vec<ScalingRow>,
}

/// The four distinct images of the benchmark fleet.
fn images() -> Vec<Workload> {
    vec![
        fg_workloads::nginx_patched(),
        fg_workloads::vsftpd(),
        fg_workloads::openssh(),
        fg_workloads::exim(),
    ]
}

/// The fleet configuration under test: streaming engines (so background
/// drains exercise the scheduler) over one core with the multi-CR3 filter.
fn fleet_config() -> FleetConfig {
    let mut cfg = FleetConfig::default();
    cfg.flowguard.streaming = true;
    cfg
}

/// Builds and runs an `n`-process fleet over the four images (member `pid`
/// runs image `pid % 4` on a pid-seeded load stream). Returns the fleet
/// and the wall-clock seconds of the run loop.
fn run_fleet(n: usize) -> (FleetSupervisor, f64) {
    let ws = images();
    let mut fleet = FleetSupervisor::new(fleet_config());
    for pid in 0..n {
        let w = &ws[pid % ws.len()];
        let corpus = vec![w.default_input.clone()];
        let input = fg_workloads::load_input(REQUESTS_PER_MEMBER, pid as u64);
        fleet.spawn(&w.name, &w.image, &corpus, &input).expect("benign image admitted");
    }
    let start = Instant::now();
    fleet.run();
    let wall = start.elapsed().as_secs_f64();
    for m in fleet.members() {
        assert_eq!(
            m.stop,
            Some(fg_cpu::StopReason::Exited(0)),
            "benign member {} must exit clean",
            m.pid
        );
        assert!(!m.violated(), "benign member {} must not violate", m.pid);
    }
    (fleet, wall)
}

/// One scaling row at `n` processes.
fn scaling_row(n: usize) -> ScalingRow {
    let (fleet, wall) = run_fleet(n);
    let checks = fleet.snapshot().checks_total;
    ScalingRow { processes: n, checks, wall_sec: wall, checks_per_sec: checks as f64 / wall }
}

/// The solo baseline: each of the four images run alone (same seeds as
/// fleet members 0–3, same scheduler policy), latency histograms merged.
fn solo_p99() -> u64 {
    let merged = fg_trace::Histogram::new();
    for pid in 0..images().len() {
        let (fleet, _) = {
            let ws = images();
            let w = &ws[pid];
            let mut fleet = FleetSupervisor::new(fleet_config());
            let input = fg_workloads::load_input(REQUESTS_PER_MEMBER, pid as u64);
            fleet
                .spawn(&w.name, &w.image, std::slice::from_ref(&w.default_input), &input)
                .expect("benign image admitted");
            let start = Instant::now();
            fleet.run();
            (fleet, start.elapsed().as_secs_f64())
        };
        merged.merge_from(&fleet.merged_check_latency());
    }
    merged.quantile(0.99)
}

/// The concurrent attack fleet: five members, each running a distinct
/// `fg-attacks` payload against the shared vulnerable-nginx deployment.
/// Returns `(total, detected)`.
fn attack_fleet() -> (usize, usize) {
    let (w, d) = trained_vulnerable_nginx();
    let g = find_gadgets(&w.image);
    let payloads: Vec<(&'static str, Vec<u8>)> = vec![
        ("rop_write", rop_write(&w.image, &g)),
        ("srop_execve", srop_execve(&w.image, &g)),
        ("ret_to_lib", ret_to_lib(&w.image, &g)),
        ("history_flush", history_flush(&w.image, &g, 12)),
        ("kbouncer_evasion", kbouncer_evasion(&w.image, 12)),
    ];
    let mut fleet = FleetSupervisor::new(fleet_config());
    for (name, payload) in &payloads {
        fleet.spawn_deployment(name, d.clone(), payload).expect("vulnerable artifact is honest");
    }
    fleet.run();
    let detected = fleet.members().iter().filter(|m| m.violated()).count();
    (payloads.len(), detected)
}

/// Runs the whole measurement.
pub fn run() -> FleetBench {
    // Headline: 64 concurrent processes, 4 distinct images.
    let (fleet, wall) = run_fleet(FLEET_SIZE);
    let snap = fleet.snapshot();
    let cache = fleet.cache_stats();
    let sched = snap.scheduler;
    let p99 = fleet.merged_check_latency().quantile(0.99);
    let solo = solo_p99();
    let (attacks_total, attacks_detected) = attack_fleet();
    let scaling = vec![scaling_row(1), scaling_row(8), scaling_row(FLEET_SIZE)];

    FleetBench {
        processes: FLEET_SIZE,
        distinct_images: images().len(),
        artifact_cache_hit_rate: cache.hit_rate(),
        checks_total: snap.checks_total,
        checks_per_sec: snap.checks_total as f64 / wall,
        p99_check_latency_cycles: p99,
        solo_p99_check_latency_cycles: solo,
        p99_latency_ratio: p99 as f64 / solo as f64,
        dropped_checks: sched.dropped,
        shed_inline: sched.shed_inline,
        drains_enqueued: sched.drains_enqueued,
        drains_executed: sched.executed,
        context_switches: snap.switches,
        attacks_total,
        attacks_detected,
        attacks_detected_fraction: attacks_detected as f64 / attacks_total as f64,
        scaling,
    }
}

/// Prints the tables and writes `BENCH_fleet.json`.
pub fn print() {
    let b = run();
    print_table(&b);
    match write_json(&b, JSON_PATH) {
        Ok(()) => println!("\nwrote {JSON_PATH}"),
        Err(e) => eprintln!("\nfailed to write {JSON_PATH}: {e}"),
    }
}

/// Prints the metric tables for a measurement.
pub fn print_table(b: &FleetBench) {
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["processes".into(), b.processes.to_string()]);
    t.row(vec!["distinct images".into(), b.distinct_images.to_string()]);
    t.row(vec!["artifact-cache hit rate".into(), fmt(b.artifact_cache_hit_rate, 4)]);
    t.row(vec!["checks total".into(), b.checks_total.to_string()]);
    t.row(vec!["checks/sec (wall)".into(), fmt(b.checks_per_sec, 0)]);
    t.row(vec!["p99 check latency (cycles)".into(), b.p99_check_latency_cycles.to_string()]);
    t.row(vec!["solo p99 (cycles)".into(), b.solo_p99_check_latency_cycles.to_string()]);
    t.row(vec!["p99 ratio (fleet/solo)".into(), fmt(b.p99_latency_ratio, 3)]);
    t.row(vec!["dropped checks".into(), b.dropped_checks.to_string()]);
    t.row(vec!["shed inline".into(), b.shed_inline.to_string()]);
    t.row(vec![
        "drains enqueued/executed".into(),
        format!("{}/{}", b.drains_enqueued, b.drains_executed),
    ]);
    t.row(vec!["context switches".into(), b.context_switches.to_string()]);
    t.row(vec!["attacks detected".into(), format!("{}/{}", b.attacks_detected, b.attacks_total)]);
    t.print("Fleet-scale enforcement (BENCH_fleet.json)");

    let mut s = Table::new(&["processes", "checks", "wall s", "checks/sec"]);
    for r in &b.scaling {
        s.row(vec![
            r.processes.to_string(),
            r.checks.to_string(),
            fmt(r.wall_sec, 2),
            fmt(r.checks_per_sec, 0),
        ]);
    }
    s.print("Fleet scaling (checks/sec vs process count)");
}

/// Serialises a measurement to `path`.
pub fn write_json(b: &FleetBench, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(b).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")
}

/// Compares `current` against a baseline, returning every gated metric
/// that fails. All fleet gates are absolute (the metrics are deterministic
/// properties of the run, not machine-dependent throughputs); the baseline
/// pins the deterministic counters exactly so silent behaviour drift shows
/// up in CI.
pub fn regressions(current: &FleetBench, baseline: &FleetBench, _factor: f64) -> Vec<String> {
    let mut out = Vec::new();
    if current.artifact_cache_hit_rate < 0.9 {
        out.push(format!(
            "artifact_cache_hit_rate too low: {:.4} (must stay >= 0.9)",
            current.artifact_cache_hit_rate
        ));
    }
    if current.p99_latency_ratio > 2.0 {
        out.push(format!(
            "p99_latency_ratio too high: {:.3} (fleet p99 must stay within 2x of solo)",
            current.p99_latency_ratio
        ));
    }
    if current.dropped_checks != 0 {
        out.push(format!("dropped_checks: {} (must be 0)", current.dropped_checks));
    }
    if current.drains_executed != current.drains_enqueued {
        out.push(format!(
            "deferred drains leaked: {} enqueued vs {} executed",
            current.drains_enqueued, current.drains_executed
        ));
    }
    if (current.attacks_detected_fraction - 1.0).abs() > f64::EPSILON {
        out.push(format!(
            "attacks_detected_fraction: {:.2} ({}/{}; every fleet-wide attack must be caught)",
            current.attacks_detected_fraction, current.attacks_detected, current.attacks_total
        ));
    }
    if current.checks_total != baseline.checks_total {
        out.push(format!(
            "checks_total drifted: {} vs baseline {} (deterministic workload)",
            current.checks_total, baseline.checks_total
        ));
    }
    if current.processes != baseline.processes
        || current.distinct_images != baseline.distinct_images
    {
        out.push(format!(
            "fleet shape drifted: {}p/{}i vs baseline {}p/{}i",
            current.processes,
            current.distinct_images,
            baseline.processes,
            baseline.distinct_images
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetBench {
        FleetBench {
            processes: 64,
            distinct_images: 4,
            artifact_cache_hit_rate: 0.9375,
            checks_total: 1000,
            checks_per_sec: 5000.0,
            p99_check_latency_cycles: 900,
            solo_p99_check_latency_cycles: 850,
            p99_latency_ratio: 900.0 / 850.0,
            dropped_checks: 0,
            shed_inline: 0,
            drains_enqueued: 400,
            drains_executed: 400,
            context_switches: 640,
            attacks_total: 5,
            attacks_detected: 5,
            attacks_detected_fraction: 1.0,
            scaling: vec![ScalingRow {
                processes: 1,
                checks: 16,
                wall_sec: 0.1,
                checks_per_sec: 160.0,
            }],
        }
    }

    #[test]
    fn json_roundtrip_and_clean_sample_passes() {
        let b = sample();
        let s = serde_json::to_string(&b).unwrap();
        let r: FleetBench = serde_json::from_str(&s).unwrap();
        assert_eq!(r.checks_total, b.checks_total);
        assert_eq!(r.scaling.len(), 1);
        assert!(regressions(&b, &b, 2.0).is_empty());
    }

    #[test]
    fn regressions_flag_each_gate() {
        let base = sample();
        let mut bad = base.clone();
        bad.artifact_cache_hit_rate = 0.5;
        bad.p99_latency_ratio = 2.5;
        bad.dropped_checks = 1;
        bad.drains_executed = 399;
        bad.attacks_detected = 4;
        bad.attacks_detected_fraction = 0.8;
        bad.checks_total = 999;
        let r = regressions(&bad, &base, 2.0);
        assert_eq!(r.len(), 6, "{r:?}");
    }

    // The full 64-process measurement runs in the bench binary and CI; this
    // smoke keeps the in-tree suite fast while proving the machinery.
    #[test]
    fn small_fleet_measurement_is_clean() {
        let (fleet, _) = run_fleet(8);
        let snap = fleet.snapshot();
        assert!(snap.checks_total > 0);
        assert_eq!(snap.scheduler.dropped, 0);
        assert_eq!(snap.scheduler.executed, snap.scheduler.drains_enqueued);
        let cache = fleet.cache_stats();
        assert!(cache.hit_rate() >= 0.5, "8 processes over 4 images: half the lookups hit");
        let (total, detected) = attack_fleet();
        assert_eq!(detected, total, "all concurrent attacks detected");
    }
}
