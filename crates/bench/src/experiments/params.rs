//! **§7.1.1 parameter study** — how `cred_ratio` and `pkt_count` trade
//! security for performance:
//!
//! * the AIA interpolation `AIA = r·AIA_fine + (1−r)·AIA_itc` crosses below
//!   the O-CFG baseline around r ≈ 70% (the paper's observation);
//! * the history-flushing attack evades short TIP windows and is caught by
//!   the default `pkt_count = 30`.

use crate::table::{fmt, Table};
use fg_cfg::{aia_fine, aia_flowguard, aia_itc, aia_ocfg, ItcCfg, OCfg};
use flowguard::FlowGuardConfig;

/// AIA sweep row.
#[derive(Debug, Clone)]
pub struct AiaPoint {
    /// The credit ratio.
    pub ratio: f64,
    /// Per-server FlowGuard AIA at this ratio.
    pub aia: Vec<(String, f64)>,
    /// Whether every server beats its O-CFG AIA at this ratio.
    pub all_beat_ocfg: bool,
}

/// Sweeps the credit ratio.
pub fn aia_sweep(ratios: &[f64]) -> Vec<AiaPoint> {
    let servers: Vec<(String, f64, f64, f64)> = fg_workloads::servers()
        .iter()
        .map(|w| {
            let ocfg = OCfg::build(&w.image);
            let itc = ItcCfg::build(&ocfg);
            (w.name.clone(), aia_ocfg(&ocfg), aia_itc(&itc), aia_fine(&ocfg))
        })
        .collect();
    ratios
        .iter()
        .map(|&r| {
            let aia: Vec<(String, f64)> = servers
                .iter()
                .map(|(n, _, itc, fine)| (n.clone(), aia_flowguard(r, *fine, *itc)))
                .collect();
            let all_beat = servers.iter().zip(&aia).all(|((_, o, _, _), (_, a))| a < o);
            AiaPoint { ratio: r, aia, all_beat_ocfg: all_beat }
        })
        .collect()
}

/// pkt_count sweep row.
#[derive(Debug, Clone)]
pub struct WindowPoint {
    /// The configured pkt_count.
    pub pkt_count: usize,
    /// Whether the history-flushing attack was detected.
    pub detected: bool,
}

/// Sweeps the checking-window size against the history-flushing attack.
pub fn window_sweep(counts: &[usize]) -> Vec<WindowPoint> {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let attack = fg_attacks::history_flush(&w.image, &g, 12);
    counts
        .iter()
        .map(|&pkt_count| {
            let cfg =
                FlowGuardConfig { pkt_count, require_module_stride: false, ..Default::default() };
            let r = fg_attacks::run_protected(&d, &attack, cfg);
            WindowPoint { pkt_count, detected: r.detected }
        })
        .collect()
}

/// Prints both sweeps.
pub fn print() {
    let ratios = [0.0, 0.3, 0.5, 0.7, 0.9, 1.0];
    let points = aia_sweep(&ratios);
    let names: Vec<String> = points[0].aia.iter().map(|(n, _)| n.clone()).collect();
    let mut headers: Vec<&str> = vec!["cred_ratio"];
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    headers.extend(name_refs);
    headers.push("beats O-CFG everywhere");
    let mut t = Table::new(&headers);
    for p in &points {
        let mut row = vec![fmt(p.ratio, 1)];
        row.extend(p.aia.iter().map(|(_, a)| fmt(*a, 2)));
        row.push(if p.all_beat_ocfg { "yes" } else { "no" }.into());
        t.row(row);
    }
    t.print("§7.1.1 — AIA vs cred_ratio (paper: all benchmarks beat O-CFG above ~70%)");

    let sweep = window_sweep(&[2, 3, 5, 10, 20, 30]);
    let mut t2 = Table::new(&["pkt_count", "history-flush detected"]);
    for p in &sweep {
        t2.row(vec![
            p.pkt_count.to_string(),
            if p.detected { "yes" } else { "NO (evaded)" }.into(),
        ]);
    }
    t2.print("§7.1.1 — checking-window size vs history flushing (default pkt_count = 30)");
    assert!(sweep.last().expect("points").detected, "the default window must catch the attack");
    assert!(!sweep.first().expect("points").detected, "a tiny window must be flushable");
}
