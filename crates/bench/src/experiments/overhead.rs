//! Shared logic for the Figure 5 overhead experiments: run each workload
//! under full FlowGuard protection and break the slowdown into the paper's
//! four phases (trace / decode / check / other).

use crate::measure::{geomean_floored, run_protected, trained_deployment};
use crate::table::{fmt, Table};
use fg_cpu::CostModel;
use fg_workloads::Workload;
use flowguard::FlowGuardConfig;

/// One workload's overhead breakdown (percent of baseline execution).
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Workload name.
    pub name: String,
    /// Tracing overhead %.
    pub trace: f64,
    /// Decoding overhead %.
    pub decode: f64,
    /// Checking overhead %.
    pub check: f64,
    /// Other (interception) overhead %.
    pub other: f64,
    /// Total overhead %.
    pub total: f64,
    /// Fraction of checks escalated to the slow path.
    pub slow_fraction: f64,
}

/// Measures one workload.
pub fn breakdown(w: &Workload, cfg: &FlowGuardConfig, cost: CostModel) -> BreakdownRow {
    let d = trained_deployment(w);
    let p = run_protected(w, &d, cfg.clone(), cost);
    assert!(
        !matches!(p.run.stop, fg_cpu::StopReason::Killed(_)),
        "{}: benign run must not be killed (false positive!)",
        w.name
    );
    let exec = p.run.account.exec;
    BreakdownRow {
        name: w.name.clone(),
        trace: p.run.account.trace / exec * 100.0,
        decode: p.run.account.decode / exec * 100.0,
        check: p.run.account.check / exec * 100.0,
        other: p.run.account.other / exec * 100.0,
        total: p.run.account.overhead() * 100.0,
        slow_fraction: p.slow_fraction,
    }
}

/// Measures a population and prints the breakdown table.
pub fn print_population(
    title: &str,
    ws: &[Workload],
    cfg: &FlowGuardConfig,
    cost: CostModel,
) -> Vec<BreakdownRow> {
    let rows: Vec<BreakdownRow> = ws.iter().map(|w| breakdown(w, cfg, cost)).collect();
    let mut t = Table::new(&[
        "application",
        "trace %",
        "decode %",
        "check %",
        "other %",
        "total %",
        "slow-path freq",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            fmt(r.trace, 2),
            fmt(r.decode, 2),
            fmt(r.check, 2),
            fmt(r.other, 2),
            fmt(r.total, 2),
            fmt(r.slow_fraction, 3),
        ]);
    }
    let g = geomean_floored(&rows.iter().map(|r| r.total).collect::<Vec<_>>(), 0.01);
    t.row(vec![
        "geomean".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        fmt(g, 2),
        String::new(),
    ]);
    t.print(title);
    rows
}
