//! **Ablation: high-credit path matching** — the paper's §7.1.2 future-work
//! extension: "we can also make the fast path more context-sensitive by
//! matching the high-credit paths … this can significantly strengthen the
//! security of fast path, however, it may introduce larger number of slow
//! path checking."
//!
//! The experiment quantifies exactly that trade: with *partial* training,
//! path matching escalates more windows to the slow path (higher overhead),
//! in exchange for rejecting novel stitchings of individually-trained edges.

use crate::table::{fmt, Table};
use flowguard::{Deployment, FlowGuardConfig};

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label.
    pub config: &'static str,
    /// Slow-path invocations per check.
    pub slow_fraction: f64,
    /// Total overhead %.
    pub overhead_pct: f64,
    /// Trained path grams available.
    pub grams: usize,
    /// High-credit edge adjacencies an attacker may stitch (lower = less
    /// fast-path attack surface).
    pub stitchable_pairs: usize,
}

/// Counts adjacent high-credit edge pairs `(a→b, b→c)`; with `use_grams`,
/// only pairs whose adjacency was seen in training are counted.
fn stitchable(itc: &fg_cfg::ItcCfg, use_grams: bool) -> usize {
    itc.iter_edges()
        .filter(|&(_, _, e)| itc.credit(e) == fg_cfg::Credit::High)
        .map(|(_, b, e1)| {
            itc.targets_of(b)
                .iter()
                .filter(|&&c| {
                    itc.edge(b, c).is_some_and(|e2| {
                        itc.credit(e2) == fg_cfg::Credit::High
                            && (!use_grams || itc.has_path_gram(e1, e2))
                    })
                })
                .count()
        })
        .sum()
}

/// Runs the ablation on the nginx-alike with deliberately partial training
/// (half the benign handler mix).
pub fn run() -> Vec<Row> {
    let w = fg_workloads::nginx_patched();
    let mut d = Deployment::analyze(&w.image);
    // Partial training: only commands 0 and 1.
    let corpus: Vec<Vec<u8>> = (0..2u8)
        .flat_map(|c| {
            vec![
                fg_workloads::request(c, b"partial-training-payload"),
                fg_workloads::request(c, b"pt"),
            ]
        })
        .collect();
    d.train(&corpus);
    let grams = d.itc.path_gram_count();

    let mut rows = Vec::new();
    for (label, path_matching) in
        [("edges only (paper default)", false), ("path matching (§7.1.2 ext)", true)]
    {
        let cfg = FlowGuardConfig { path_matching, ..Default::default() };
        let mut p = d.launch(&w.default_input, cfg);
        let stop = p.run(crate::measure::BUDGET);
        assert!(
            !matches!(stop, fg_cpu::StopReason::Killed(_)),
            "benign traffic must never be killed"
        );
        let s = p.stats.snapshot();
        rows.push(Row {
            config: label,
            slow_fraction: s.slow_fraction(),
            overhead_pct: p.machine.account.overhead() * 100.0,
            grams,
            stitchable_pairs: stitchable(&d.itc, path_matching),
        });
    }
    rows
}

/// Prints the ablation.
pub fn print() {
    let rows = run();
    let mut t =
        Table::new(&["fast-path policy", "slow-path freq", "total overhead %", "stitchable pairs"]);
    for r in &rows {
        t.row(vec![
            r.config.into(),
            fmt(r.slow_fraction, 3),
            fmt(r.overhead_pct, 2),
            r.stitchable_pairs.to_string(),
        ]);
    }
    t.print(&format!(
        "ablation — high-credit path matching ({} trained grams, partial training)",
        rows[0].grams
    ));
    assert!(rows[1].slow_fraction >= rows[0].slow_fraction, "path matching can only escalate more");
    assert!(
        rows[1].stitchable_pairs < rows[0].stitchable_pairs,
        "path matching must shrink the stitchable fast-path surface"
    );
    println!(
        "\npaper §7.1.2: stronger fast path ({} → {} stitchable pairs), at the cost of more slow-path checking.",
        rows[0].stitchable_pairs, rows[1].stitchable_pairs
    );
}
