//! Experiment implementations, one module per table/figure of the paper.

pub mod attacks_eval;
pub mod baselines;
pub mod cache;
pub mod fastpath;
pub mod fig5;
pub mod fleet;
pub mod hw;
pub mod micro;
pub mod multiproc;
pub mod observability;
pub mod overhead;
pub mod params;
pub mod pathmatch;
pub mod retc;
pub mod sec2;
pub mod slowpath;
pub mod streaming;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;
