//! **§7.2.4 — benefits from minor hardware extensions**: re-run the server
//! population with the §6 suggestion of a dedicated pattern-matching packet
//! decoder (packet-level decode cost → 0) and compare the breakdown.

use super::fig5;
use crate::measure::geomean_floored;
use crate::table::{fmt, Table};
use fg_cpu::CostModel;

/// Runs both configurations and prints the comparison.
pub fn print() {
    println!("\n# §7.2.4 — hardware-extension ablation (dedicated packet decoder)\n");
    println!("software decoder:");
    let sw = fig5::servers(CostModel::calibrated());
    println!("\nwith the §6 hardware packet decoder (decode cost → 0):");
    let hw = fig5::servers(CostModel::calibrated().with_hardware_decoder());

    let mut t = Table::new(&["server", "total % (software)", "total % (hw decoder)", "saved"]);
    for (s, h) in sw.iter().zip(&hw) {
        t.row(vec![
            s.name.clone(),
            fmt(s.total, 2),
            fmt(h.total, 2),
            format!("{}%", fmt((1.0 - h.total / s.total.max(1e-9)) * 100.0, 0)),
        ]);
    }
    let gs = geomean_floored(&sw.iter().map(|r| r.total).collect::<Vec<_>>(), 0.01);
    let gh = geomean_floored(&hw.iter().map(|r| r.total).collect::<Vec<_>>(), 0.01);
    t.row(vec!["geomean".into(), fmt(gs, 2), fmt(gh, 2), String::new()]);
    t.print("§7.2.4 — overhead with vs without the hardware decoder");
    println!(
        "\npaper: decoding contributes >30% of server overhead; a dedicated decoder removes it."
    );
    assert!(gh < gs, "the hardware decoder must reduce overhead");
}
