//! **Observability-plane benchmarks** — per-phase cycle attribution of the
//! span profiler, the wall-clock overhead of running with full profiling
//! versus telemetry off, profiler self-overhead, and the watchdog verdict
//! on a benign run.
//!
//! Emits `BENCH_observability.json`, tracked in CI against a checked-in
//! baseline. The two hard gates are **attribution coverage** — check-phase
//! span cycles must sum to at least 95% of the measured check cycles, in
//! both the default and the streaming configuration — and **profiling
//! overhead** — the fully-instrumented run must stay within an absolute
//! bound of the telemetry-off run (plus the usual baseline-relative
//! factor). Absolute nanoseconds are informational only.

use crate::table::{fmt, Table};
use flowguard::{FlowGuardConfig, HealthStatus, PhaseSpan, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The default artifact file name.
pub const JSON_PATH: &str = "BENCH_observability.json";

/// Absolute ceiling on `profiling_overhead`: the span profiler adds modeled
/// cycles to counters, so the wall-clock cost of full profiling must stay
/// small even on a noisy CI box.
pub const OVERHEAD_CEILING: f64 = 1.5;

/// Minimum acceptable check-phase attribution coverage.
pub const COVERAGE_FLOOR: f64 = 0.95;

/// One full measurement, serialised as `BENCH_observability.json`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObservabilityBench {
    /// Check-phase span cycles ÷ measured check cycles (default config).
    /// Gated: must stay ≥ [`COVERAGE_FLOOR`].
    pub attribution_coverage: f64,
    /// Same coverage on the streaming configuration, where background
    /// drains must *not* be attributed to the check path.
    pub streaming_attribution_coverage: f64,
    /// Wall-clock ratio of a fully-profiled protected run over the same
    /// run with telemetry off. Gated against [`OVERHEAD_CEILING`].
    pub profiling_overhead: f64,
    /// Span records written during the default-config run.
    pub span_records: u64,
    /// Measured profiler self-overhead, ns per span record (sampled).
    pub self_overhead_ns_per_record: f64,
    /// Per-phase cycles on the default config.
    pub intercept_cycles: f64,
    /// Tier-0 membership-probe cycles.
    pub tier0_probe_cycles: f64,
    /// Credit-labeled edge-probe cycles.
    pub edge_probe_cycles: f64,
    /// Fast packet-scan cycles.
    pub fast_scan_cycles: f64,
    /// Residue-scan cycles (streaming config; zero on default).
    pub residue_scan_cycles: f64,
    /// Slow-path flow-decode cycles.
    pub slow_decode_cycles: f64,
    /// Slow-path shard-stitch cycles.
    pub shard_stitch_cycles: f64,
    /// Verdict/bookkeeping cycles.
    pub verdict_cycles: f64,
    /// Background stream-drain cycles (streaming config; not a check
    /// phase).
    pub stream_drain_cycles: f64,
    /// Watchdog verdict label after the benign run (`healthy` expected).
    pub health_status: String,
}

/// Check-phase attribution coverage of one telemetry snapshot: span-profiled
/// check cycles over the check-latency histogram's measured total.
fn coverage(ts: &TelemetrySnapshot) -> f64 {
    let measured = ts.check_latency.mean * ts.check_latency.count as f64;
    if measured <= 0.0 {
        return 0.0;
    }
    ts.spans.check_cycles / measured
}

/// Runs the nginx-style bench workload once under `cfg` and returns the
/// telemetry snapshot plus the health verdict.
fn protected_run(cfg: FlowGuardConfig) -> (TelemetrySnapshot, HealthStatus) {
    let w = fg_workloads::nginx_patched();
    let d = crate::measure::trained_deployment(&w);
    let mut p = d.launch(&w.default_input, cfg);
    let stop = p.run(crate::measure::BUDGET);
    assert!(matches!(stop, fg_cpu::StopReason::Exited(0)), "benign run must exit: {stop:?}");
    let ts = p.stats.telemetry_snapshot();
    assert!(ts.checks > 0, "protected run must hit endpoints");
    let health = p.stats.health_report().status;
    (ts, health)
}

/// Times `iters` protected runs under `cfg` in 3 blocks and returns the
/// fastest per-run seconds (the usual best-of-N convention, smaller N
/// because each run replays the whole workload).
fn time_run(cfg: &FlowGuardConfig) -> f64 {
    let w = fg_workloads::nginx_patched();
    let d = crate::measure::trained_deployment(&w);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut p = d.launch(&w.default_input, cfg.clone());
        let stop = p.run(crate::measure::BUDGET);
        assert!(matches!(stop, fg_cpu::StopReason::Exited(0)), "benign run must exit: {stop:?}");
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Runs the whole measurement.
pub fn run() -> ObservabilityBench {
    // Default config, full profiling: attribution + per-phase table.
    let (ts, health) = protected_run(FlowGuardConfig::default());
    let phase = |p: PhaseSpan| ts.spans.phase_cycles(p);

    // Streaming config: drain phases must stay out of the check budget.
    let (sts, _) = protected_run(FlowGuardConfig { streaming: true, ..Default::default() });

    // Wall-clock cost of the profiler: full profiling vs telemetry off.
    let profiled = time_run(&FlowGuardConfig::default());
    let dark = time_run(&FlowGuardConfig { telemetry: false, ..Default::default() });
    let profiling_overhead = if dark > 0.0 { profiled / dark } else { 1.0 };

    ObservabilityBench {
        attribution_coverage: coverage(&ts),
        streaming_attribution_coverage: coverage(&sts),
        profiling_overhead,
        span_records: ts.spans.records,
        self_overhead_ns_per_record: ts.spans.overhead.mean_ns_per_record,
        intercept_cycles: phase(PhaseSpan::Intercept),
        tier0_probe_cycles: phase(PhaseSpan::Tier0Probe),
        edge_probe_cycles: phase(PhaseSpan::EdgeProbe),
        fast_scan_cycles: phase(PhaseSpan::FastScan),
        residue_scan_cycles: sts.spans.phase_cycles(PhaseSpan::ResidueScan),
        slow_decode_cycles: phase(PhaseSpan::SlowDecode),
        shard_stitch_cycles: phase(PhaseSpan::ShardStitch),
        verdict_cycles: phase(PhaseSpan::Verdict),
        stream_drain_cycles: sts.spans.phase_cycles(PhaseSpan::StreamDrain),
        health_status: health.label().to_string(),
    }
}

/// Prints the table and writes `BENCH_observability.json`.
pub fn print() {
    let b = run();
    print_table(&b);
    match write_json(&b, JSON_PATH) {
        Ok(()) => println!("\nwrote {JSON_PATH}"),
        Err(e) => eprintln!("\nfailed to write {JSON_PATH}: {e}"),
    }
}

/// Prints the metric table for a measurement.
pub fn print_table(b: &ObservabilityBench) {
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["attribution coverage".into(), fmt(b.attribution_coverage, 3)]);
    t.row(vec!["streaming attribution coverage".into(), fmt(b.streaming_attribution_coverage, 3)]);
    t.row(vec!["profiling overhead (x)".into(), fmt(b.profiling_overhead, 3)]);
    t.row(vec!["span records".into(), b.span_records.to_string()]);
    t.row(vec!["self-overhead ns/record".into(), fmt(b.self_overhead_ns_per_record, 1)]);
    t.row(vec!["intercept cycles".into(), fmt(b.intercept_cycles, 0)]);
    t.row(vec!["tier0 probe cycles".into(), fmt(b.tier0_probe_cycles, 0)]);
    t.row(vec!["edge probe cycles".into(), fmt(b.edge_probe_cycles, 0)]);
    t.row(vec!["fast scan cycles".into(), fmt(b.fast_scan_cycles, 0)]);
    t.row(vec!["residue scan cycles (streaming)".into(), fmt(b.residue_scan_cycles, 0)]);
    t.row(vec!["slow decode cycles".into(), fmt(b.slow_decode_cycles, 0)]);
    t.row(vec!["shard stitch cycles".into(), fmt(b.shard_stitch_cycles, 0)]);
    t.row(vec!["verdict cycles".into(), fmt(b.verdict_cycles, 0)]);
    t.row(vec!["stream drain cycles (bg)".into(), fmt(b.stream_drain_cycles, 0)]);
    t.row(vec!["health status".into(), b.health_status.clone()]);
    t.print("Observability-plane benchmarks (BENCH_observability.json)");
}

/// Serialises a measurement to `path`.
pub fn write_json(b: &ObservabilityBench, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(b).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")
}

/// Compares `current` against a baseline, returning every gated metric
/// that regressed. Coverage gates are absolute floors ([`COVERAGE_FLOOR`]),
/// the overhead gate combines an absolute ceiling ([`OVERHEAD_CEILING`])
/// with the baseline-relative `factor`, and a benign run must end healthy
/// with a non-empty span ring.
pub fn regressions(
    current: &ObservabilityBench,
    baseline: &ObservabilityBench,
    factor: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    if current.attribution_coverage < COVERAGE_FLOOR {
        out.push(format!(
            "attribution_coverage too low: {:.3} (must stay >= {COVERAGE_FLOOR})",
            current.attribution_coverage
        ));
    }
    if current.streaming_attribution_coverage < COVERAGE_FLOOR {
        out.push(format!(
            "streaming_attribution_coverage too low: {:.3} (must stay >= {COVERAGE_FLOOR})",
            current.streaming_attribution_coverage
        ));
    }
    let bound = OVERHEAD_CEILING.max(baseline.profiling_overhead * factor);
    if current.profiling_overhead > bound {
        out.push(format!(
            "profiling_overhead regressed: {:.3} vs bound {bound:.3}",
            current.profiling_overhead
        ));
    }
    if current.span_records == 0 {
        out.push("span_records is zero: profiler recorded nothing".to_string());
    }
    if current.health_status != HealthStatus::Healthy.label() {
        out.push(format!(
            "benign bench run ended {}: watchdog must report healthy",
            current.health_status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObservabilityBench {
        ObservabilityBench {
            attribution_coverage: 1.0,
            streaming_attribution_coverage: 1.0,
            profiling_overhead: 1.02,
            span_records: 120,
            self_overhead_ns_per_record: 18.0,
            intercept_cycles: 2880.0,
            tier0_probe_cycles: 4181.0,
            edge_probe_cycles: 60319.0,
            fast_scan_cycles: 13563.0,
            verdict_cycles: 2400.0,
            stream_drain_cycles: 1_135_965.0,
            health_status: "healthy".to_string(),
            ..Default::default()
        }
    }

    #[test]
    fn json_roundtrip() {
        let b = sample();
        let s = serde_json::to_string(&b).unwrap();
        let r: ObservabilityBench = serde_json::from_str(&s).unwrap();
        assert!((r.attribution_coverage - 1.0).abs() < 1e-12);
        assert_eq!(r.span_records, 120);
        assert_eq!(r.health_status, "healthy");
        assert!(regressions(&b, &b, 2.0).is_empty());
    }

    #[test]
    fn regressions_flag_low_coverage_and_fat_overhead() {
        let base = sample();
        let mut bad = base.clone();
        bad.attribution_coverage = 0.4;
        bad.streaming_attribution_coverage = 0.9;
        bad.profiling_overhead = 3.0;
        bad.span_records = 0;
        bad.health_status = "critical".to_string();
        let r = regressions(&bad, &base, 2.0);
        assert_eq!(r.len(), 5, "{r:?}");
    }

    #[test]
    fn overhead_bound_is_max_of_ceiling_and_baseline_factor() {
        let mut base = sample();
        base.profiling_overhead = 1.0;
        let mut cur = base.clone();
        cur.profiling_overhead = 1.4; // above 2x baseline-relative? no: bound
                                      // is max(1.5, 2.0) = 2.0, so fine.
        assert!(regressions(&cur, &base, 2.0).is_empty());
        cur.profiling_overhead = 2.1;
        let r = regressions(&cur, &base, 2.0);
        assert_eq!(r.len(), 1, "{r:?}");
    }
}
