//! **Figure 5 (a)–(c)** — FlowGuard's runtime overhead on servers, Linux
//! utilities, and SPEC profiles, broken into trace/decode/check/other, and
//! **Figure 5 (d)** — the fuzzing-training benefit curve.

use super::overhead::{print_population, BreakdownRow};
use crate::table::{fmt, Table};
use fg_cpu::CostModel;
use flowguard::{Deployment, FlowGuardConfig};

/// Figure 5a: server applications. Paper geomean ≈ 4.37%.
pub fn servers(cost: CostModel) -> Vec<BreakdownRow> {
    // The performance population uses the patched nginx (the vulnerable one
    // is the security target), matching the paper's default-config servers.
    let mut ws = vec![fg_workloads::nginx_patched()];
    ws.extend([fg_workloads::vsftpd(), fg_workloads::openssh(), fg_workloads::exim()]);
    print_population(
        "Figure 5a — server overhead breakdown (paper geomean ~4.37%)",
        &ws,
        &FlowGuardConfig::default(),
        cost,
    )
}

/// Figure 5b: Linux utilities. Paper geomean ≈ 0.82%.
pub fn utilities(cost: CostModel) -> Vec<BreakdownRow> {
    let ws = fg_workloads::utilities();
    print_population(
        "Figure 5b — Linux utility overhead breakdown (paper geomean ~0.82%)",
        &ws,
        &FlowGuardConfig::default(),
        cost,
    )
}

/// Figure 5c: SPEC profiles. Paper geomean ≈ 3.79% with h264ref an outlier.
pub fn spec(cost: CostModel) -> Vec<BreakdownRow> {
    let ws = fg_workloads::spec_suite();
    let rows = print_population(
        "Figure 5c — SPECCPU profile overhead (paper geomean ~3.79%, h264ref outlier)",
        &ws,
        &FlowGuardConfig::default(),
        cost,
    );
    let h264 = rows.iter().find(|r| r.name == "h264ref").expect("h264ref present");
    let rest: f64 = rows.iter().filter(|r| r.name != "h264ref").map(|r| r.total).sum::<f64>()
        / (rows.len() - 1) as f64;
    println!(
        "\nh264ref {:.2}% vs mean-of-rest {:.2}% — the indirect-call-dense loop generates far more trace",
        h264.total, rest
    );
    rows
}

/// One Figure 5d sample point.
#[derive(Debug, Clone)]
pub struct TrainingPoint {
    /// Fuzzer executions so far (the "training time" axis).
    pub execs: u64,
    /// Coverage-increasing paths discovered.
    pub paths: usize,
    /// Runtime credit ratio observed while serving the benign load.
    pub cred_ratio: f64,
}

/// Figure 5d: paths discovered and runtime cred-ratio versus training time.
pub fn training_curve(points: &[u64]) -> Vec<TrainingPoint> {
    let w = fg_workloads::nginx_patched();
    let mut out = Vec::new();
    for &execs in points {
        let mut d = Deployment::analyze(&w.image);
        let seeds = vec![fg_workloads::request(0, b"seed-input")];
        let (_, history) = d.fuzz_train(
            seeds,
            execs,
            fg_fuzz::FuzzConfig { havoc_per_entry: 24, ..Default::default() },
        );
        let paths = history.last().map_or(0, |s| s.paths);
        // Serve the ab-style benign load and observe the credit ratio.
        let mut p = d.launch(&w.default_input, FlowGuardConfig::default());
        p.run(crate::measure::BUDGET);
        let s = p.stats.snapshot();
        out.push(TrainingPoint { execs, paths, cred_ratio: s.credited_fraction() });
    }
    out
}

/// Prints Figure 5d.
pub fn print_training_curve() {
    let points = training_curve(&[10, 50, 150, 400, 900]);
    let mut t = Table::new(&["fuzzer execs", "paths", "cred-ratio during checking"]);
    for p in &points {
        t.row(vec![p.execs.to_string(), p.paths.to_string(), fmt(p.cred_ratio * 100.0, 1) + "%"]);
    }
    t.print("Figure 5d — fuzzing-training benefit (paper: paths grow, cred-ratio → 97%+)");
    let last = points.last().expect("points");
    assert!(last.cred_ratio > 0.5, "training should credit most checked edges");
}
