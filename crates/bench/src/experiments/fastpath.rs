//! **Fast-path micro-benchmarks** — scan throughput, edge-lookup latency,
//! endpoint-check latency, and the incremental scanner's bytes-per-check.
//!
//! Beyond the paper's simulated cycle accounting, this experiment measures
//! the *harness's own* fast-path hot loops in wall-clock time and emits the
//! numbers as `BENCH_fastpath.json`, which CI tracks against a checked-in
//! baseline. Hardware-independent ratios (incremental vs. cold bytes per
//! check, CSR vs. BTreeMap lookup speedup, edge-cache hit rate) are the
//! regression-gated metrics; the absolute throughputs are informational.

use crate::table::{fmt, Table};
use fg_cfg::EdgeIdx;
use fg_cpu::CostModel;
use fg_cpu::{IptUnit, Machine, TraceUnit};
use fg_ipt::topa::Topa;
use fg_ipt::{fast, IncrementalScanner};
use fg_trace::HistogramSnapshot;
use flowguard::{fastpath, scan_parallel, CheckScratch, FlowGuardConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// The default artifact file name.
pub const JSON_PATH: &str = "BENCH_fastpath.json";

/// One full measurement, serialised as `BENCH_fastpath.json`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FastpathBench {
    /// Serial packet-scan throughput, MiB of trace per second.
    pub scan_mib_per_sec: f64,
    /// PSB-parallel scan throughput on the worker pool, MiB per second.
    pub parallel_scan_mib_per_sec: f64,
    /// TIP pairs checked per second through the windowed fast path.
    pub pairs_per_sec: f64,
    /// One ITC-CFG edge lookup through the interned CSR tables, in ns.
    pub edge_lookup_ns: f64,
    /// The same lookups through a `BTreeMap<(u64, u64), EdgeIdx>` — the
    /// pre-interning representation, kept as the comparison baseline.
    pub edge_lookup_ns_btreemap: f64,
    /// `edge_lookup_ns_btreemap / edge_lookup_ns` (higher is better).
    pub edge_lookup_speedup: f64,
    /// One windowed endpoint check (scan already advanced), in ns.
    pub endpoint_check_ns: f64,
    /// Mean trace bytes scanned per endpoint check with the checkpointed
    /// incremental scanner (a protected nginx run).
    pub bytes_per_check_incremental: f64,
    /// The same run in cold-rescan reference mode.
    pub bytes_per_check_cold: f64,
    /// `bytes_per_check_incremental / bytes_per_check_cold` (lower is
    /// better; deterministic, hardware-independent).
    pub bytes_per_check_ratio: f64,
    /// Direct-mapped edge-cache hit rate over the protected run.
    pub edge_cache_hit_rate: f64,
    /// Distribution of simulated per-check latency (cycles) over the
    /// protected run, from the engine telemetry. `#[serde(default)]` so
    /// baselines written before these columns existed still parse.
    #[serde(default)]
    pub check_cycles_dist: HistogramSnapshot,
    /// Distribution of simulated fast-path scan cycles per check.
    #[serde(default)]
    pub scan_cycles_dist: HistogramSnapshot,
    /// Distribution of trace bytes scanned per check (incremental mode).
    #[serde(default)]
    pub bytes_per_check_dist: HistogramSnapshot,
}

struct Setup {
    image: fg_isa::image::Image,
    itc: fg_cfg::ItcCfg,
    trace: Vec<u8>,
    scan: fast::FastScan,
}

fn setup() -> Setup {
    let w = fg_workloads::nginx_patched();
    let ocfg = fg_cfg::OCfg::build(&w.image);
    let mut itc = fg_cfg::ItcCfg::build(&ocfg);
    fg_fuzz::train(
        &mut itc,
        &w.image,
        std::slice::from_ref(&w.default_input),
        fg_fuzz::TrainConfig::default(),
    );
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, 100_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let trace = m.trace.as_ipt().expect("ipt").trace_bytes();
    let scan = fast::scan(&trace).expect("scan");
    Setup { image: w.image.clone(), itc, trace, scan }
}

/// Times `iters` runs of `f` in 5 blocks and returns seconds per run of the
/// fastest block — the best-of-N convention for micro-timings, insensitive
/// to scheduler noise that would make ratio metrics flap in CI.
fn time_per_iter<O>(iters: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// A protected nginx run's full telemetry snapshot (drives bytes-per-check,
/// cache hit rate, and the latency-distribution columns).
fn protected_telemetry(incremental: bool) -> flowguard::TelemetrySnapshot {
    let w = fg_workloads::nginx_patched();
    let d = crate::measure::trained_deployment(&w);
    let cfg = FlowGuardConfig { incremental_scan: incremental, ..Default::default() };
    let mut p = d.launch(&w.default_input, cfg);
    let stop = p.run(crate::measure::BUDGET);
    assert!(matches!(stop, fg_cpu::StopReason::Exited(0)), "benign run must exit: {stop:?}");
    let t = p.stats.telemetry_snapshot();
    assert!(t.checks > 0, "protected run must hit endpoints");
    t
}

fn bytes_per_check(t: &flowguard::TelemetrySnapshot) -> f64 {
    t.bytes_scanned as f64 / t.checks as f64
}

/// Runs the whole measurement.
pub fn run() -> FastpathBench {
    let s = setup();
    let mib = s.trace.len() as f64 / (1024.0 * 1024.0);

    let scan_sec = time_per_iter(20, || fast::scan(&s.trace).expect("scan"));
    let par_sec = time_per_iter(20, || scan_parallel(&s.trace).expect("parallel scan"));

    // Edge lookups: the runtime pair stream, through both representations.
    let pairs: Vec<(u64, u64)> =
        s.scan.tip_ips().windows(2).map(|w| (w[0], w[1])).take(4096).collect();
    let csr_sec =
        time_per_iter(50, || pairs.iter().filter(|&&(f, t)| s.itc.edge(f, t).is_some()).count());
    let map: BTreeMap<(u64, u64), EdgeIdx> =
        s.itc.iter_edges().map(|(f, t, e)| ((f, t), e)).collect();
    let map_sec =
        time_per_iter(50, || pairs.iter().filter(|&&(f, t)| map.contains_key(&(f, t))).count());
    let per_lookup = csr_sec / pairs.len() as f64 * 1e9;
    let per_lookup_map = map_sec / pairs.len() as f64 * 1e9;

    // The windowed check with persistent scratch (the engine's hot loop).
    let cfg = FlowGuardConfig::default();
    let cache = HashSet::new();
    let cost = CostModel::calibrated();
    let mut scratch = CheckScratch::new(&s.image);
    let mut pairs_checked = 0usize;
    let check_sec = time_per_iter(200, || {
        let r = fastpath::check_windowed(
            &s.itc,
            &cache,
            &mut scratch,
            &s.scan,
            &cfg,
            cost.edge_check_cycles,
            false,
            None,
        );
        pairs_checked = r.pairs_checked;
        r
    });

    // Deterministic bytes-per-check comparison on a protected run.
    let t_inc = protected_telemetry(true);
    let t_cold = protected_telemetry(false);
    let (bpc_inc, bpc_cold) = (bytes_per_check(&t_inc), bytes_per_check(&t_cold));
    let lookups = t_inc.edge_cache_hits + t_inc.edge_cache_misses;
    let hit_rate = if lookups == 0 { 0.0 } else { t_inc.edge_cache_hits as f64 / lookups as f64 };

    // One sanity pass of the incremental scanner over the bench trace, so a
    // broken checkpoint path fails the bench loudly rather than silently
    // producing numbers for the wrong code.
    let mut inc = IncrementalScanner::new();
    inc.advance(&s.trace, s.trace.len() as u64, s.trace.len()).expect("incremental");
    assert_eq!(inc.scan().tip_events(), s.scan.tip_events(), "incremental != cold scan");

    FastpathBench {
        scan_mib_per_sec: mib / scan_sec,
        parallel_scan_mib_per_sec: mib / par_sec,
        pairs_per_sec: pairs_checked as f64 / check_sec,
        edge_lookup_ns: per_lookup,
        edge_lookup_ns_btreemap: per_lookup_map,
        edge_lookup_speedup: per_lookup_map / per_lookup,
        endpoint_check_ns: check_sec * 1e9,
        bytes_per_check_incremental: bpc_inc,
        bytes_per_check_cold: bpc_cold,
        bytes_per_check_ratio: bpc_inc / bpc_cold,
        edge_cache_hit_rate: hit_rate,
        check_cycles_dist: t_inc.check_latency,
        scan_cycles_dist: t_inc.fastpath_scan_cycles,
        bytes_per_check_dist: t_inc.bytes_per_check,
    }
}

/// Prints the table and writes `BENCH_fastpath.json`.
pub fn print() {
    let b = run();
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["serial scan MiB/s".into(), fmt(b.scan_mib_per_sec, 1)]);
    t.row(vec!["parallel scan MiB/s".into(), fmt(b.parallel_scan_mib_per_sec, 1)]);
    t.row(vec!["pairs checked / s".into(), fmt(b.pairs_per_sec, 0)]);
    t.row(vec!["edge lookup (CSR) ns".into(), fmt(b.edge_lookup_ns, 1)]);
    t.row(vec!["edge lookup (BTreeMap) ns".into(), fmt(b.edge_lookup_ns_btreemap, 1)]);
    t.row(vec!["edge lookup speedup".into(), fmt(b.edge_lookup_speedup, 2)]);
    t.row(vec!["endpoint check ns".into(), fmt(b.endpoint_check_ns, 0)]);
    t.row(vec!["bytes/check incremental".into(), fmt(b.bytes_per_check_incremental, 1)]);
    t.row(vec!["bytes/check cold rescan".into(), fmt(b.bytes_per_check_cold, 1)]);
    t.row(vec!["bytes/check ratio".into(), fmt(b.bytes_per_check_ratio, 4)]);
    t.row(vec!["edge-cache hit rate".into(), fmt(b.edge_cache_hit_rate, 3)]);
    let d = &b.check_cycles_dist;
    t.row(vec!["check cycles p50/p90/p99".into(), format!("{}/{}/{}", d.p50, d.p90, d.p99)]);
    let d = &b.bytes_per_check_dist;
    t.row(vec!["bytes/check p50/p90/p99".into(), format!("{}/{}/{}", d.p50, d.p90, d.p99)]);
    t.print("Fast-path micro-benchmarks (BENCH_fastpath.json)");
    match write_json(&b, JSON_PATH) {
        Ok(()) => println!("\nwrote {JSON_PATH}"),
        Err(e) => eprintln!("\nfailed to write {JSON_PATH}: {e}"),
    }
}

/// Serialises a measurement to `path`.
pub fn write_json(b: &FastpathBench, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(b).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")
}

/// Compares `current` against a baseline, returning every metric that
/// regressed by more than `factor`. Only hardware-independent ratios are
/// gated: throughput and latency absolutes vary across machines, the ratios
/// do not.
pub fn regressions(current: &FastpathBench, baseline: &FastpathBench, factor: f64) -> Vec<String> {
    let mut out = Vec::new();
    // Lower is better.
    if current.bytes_per_check_ratio > baseline.bytes_per_check_ratio * factor {
        out.push(format!(
            "bytes_per_check_ratio regressed: {:.4} vs baseline {:.4}",
            current.bytes_per_check_ratio, baseline.bytes_per_check_ratio
        ));
    }
    // Higher is better.
    if current.edge_lookup_speedup < baseline.edge_lookup_speedup / factor {
        out.push(format!(
            "edge_lookup_speedup regressed: {:.2} vs baseline {:.2}",
            current.edge_lookup_speedup, baseline.edge_lookup_speedup
        ));
    }
    if current.edge_cache_hit_rate < baseline.edge_cache_hit_rate / factor {
        out.push(format!(
            "edge_cache_hit_rate regressed: {:.3} vs baseline {:.3}",
            current.edge_cache_hit_rate, baseline.edge_cache_hit_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let b = FastpathBench {
            scan_mib_per_sec: 100.0,
            parallel_scan_mib_per_sec: 200.0,
            pairs_per_sec: 1e6,
            edge_lookup_ns: 20.0,
            edge_lookup_ns_btreemap: 80.0,
            edge_lookup_speedup: 4.0,
            endpoint_check_ns: 3000.0,
            bytes_per_check_incremental: 120.0,
            bytes_per_check_cold: 40_000.0,
            bytes_per_check_ratio: 0.003,
            edge_cache_hit_rate: 0.9,
            ..Default::default()
        };
        let s = serde_json::to_string(&b).unwrap();
        let r: FastpathBench = serde_json::from_str(&s).unwrap();
        assert!((r.bytes_per_check_ratio - b.bytes_per_check_ratio).abs() < 1e-12);
        assert!(regressions(&b, &b, 2.0).is_empty());
    }

    #[test]
    fn baselines_without_distribution_columns_still_parse() {
        // The checked-in baseline may predate the telemetry columns.
        let old = r#"{"scan_mib_per_sec":1.0,"parallel_scan_mib_per_sec":1.0,
            "pairs_per_sec":1.0,"edge_lookup_ns":1.0,"edge_lookup_ns_btreemap":4.0,
            "edge_lookup_speedup":4.0,"endpoint_check_ns":1.0,
            "bytes_per_check_incremental":1.0,"bytes_per_check_cold":100.0,
            "bytes_per_check_ratio":0.01,"edge_cache_hit_rate":0.8}"#;
        let b: FastpathBench = serde_json::from_str(old).unwrap();
        assert_eq!(b.check_cycles_dist.count, 0);
        assert_eq!(b.bytes_per_check_dist, HistogramSnapshot::default());
    }

    #[test]
    fn regressions_flag_worse_ratios() {
        let base = FastpathBench {
            scan_mib_per_sec: 1.0,
            parallel_scan_mib_per_sec: 1.0,
            pairs_per_sec: 1.0,
            edge_lookup_ns: 1.0,
            edge_lookup_ns_btreemap: 4.0,
            edge_lookup_speedup: 4.0,
            endpoint_check_ns: 1.0,
            bytes_per_check_incremental: 1.0,
            bytes_per_check_cold: 100.0,
            bytes_per_check_ratio: 0.01,
            edge_cache_hit_rate: 0.8,
            ..Default::default()
        };
        let mut bad = base.clone();
        bad.bytes_per_check_ratio = 0.05;
        bad.edge_lookup_speedup = 1.0;
        let r = regressions(&bad, &base, 2.0);
        assert_eq!(r.len(), 2, "{r:?}");
    }
}
