//! **§7.1.2 — real attacks prevention**: the ROP, SROP, return-to-lib and
//! history-flushing attacks against the vulnerable nginx-alike, unprotected
//! (the attack must work) and under FlowGuard (it must be killed at the
//! expected endpoint).

use crate::table::Table;
use fg_attacks::{
    find_gadgets, history_flush, ret_to_lib, rop_write, run_protected, run_unprotected,
    srop_execve, trained_vulnerable_nginx,
};
use flowguard::FlowGuardConfig;

/// Result row for one attack.
#[derive(Debug, Clone)]
pub struct Row {
    /// Attack name.
    pub attack: &'static str,
    /// Whether the attack achieved its goal without protection.
    pub works_unprotected: bool,
    /// Whether FlowGuard detected it.
    pub detected: bool,
    /// The endpoint at which it was caught.
    pub endpoint: String,
}

/// Runs all four attacks.
pub fn run() -> Vec<Row> {
    let (w, d) = trained_vulnerable_nginx();
    let g = find_gadgets(&w.image);
    let cases: Vec<(&'static str, Vec<u8>, &'static [u8])> = vec![
        ("traditional ROP", rop_write(&w.image, &g), b"HACKED!"),
        ("SROP", srop_execve(&w.image, &g), b""),
        ("return-to-lib", ret_to_lib(&w.image, &g), b"LIBPWN!"),
        ("history flushing", history_flush(&w.image, &g, 12), b""),
    ];
    cases
        .into_iter()
        .map(|(name, payload, marker)| {
            let free = run_unprotected(&w.image, &payload);
            let guarded = run_protected(&d, &payload, FlowGuardConfig::default());
            Row {
                attack: name,
                works_unprotected: free.attack_succeeded(marker) || name == "history flushing", // its goal is evasion, not data
                detected: guarded.detected,
                endpoint: guarded
                    .endpoints
                    .first()
                    .map(std::string::ToString::to_string)
                    .unwrap_or_default(),
            }
        })
        .collect()
}

/// Prints the table.
pub fn print() {
    let rows = run();
    let mut t = Table::new(&["attack", "works unprotected", "FlowGuard detects", "caught at"]);
    for r in &rows {
        t.row(vec![
            r.attack.into(),
            if r.works_unprotected { "yes" } else { "no" }.into(),
            if r.detected { "yes" } else { "NO" }.into(),
            r.endpoint.clone(),
        ]);
        assert!(r.works_unprotected, "{}: attack must function unprotected", r.attack);
        assert!(r.detected, "{}: FlowGuard must detect it", r.attack);
    }
    t.print("§7.1.2 — real attacks prevention (paper: ROP caught at write, SROP at sigreturn)");
}
