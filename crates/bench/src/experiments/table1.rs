//! **Table 1** — comparison of hardware control-flow tracing mechanisms:
//! precision, tracing overhead (geomean on the SPEC profiles), decoding
//! overhead, and filtering mechanisms.

use crate::measure::{geomean, run_baseline, run_traced, Mechanism};
use crate::table::{fmt, Table};
use fg_ipt::flow::FlowDecoder;

/// Per-mechanism summary.
#[derive(Debug, Clone)]
pub struct Row {
    /// Mechanism name.
    pub name: &'static str,
    /// Tracing overhead, percent (geomean).
    pub tracing_pct: f64,
    /// Decoding overhead vs execution (×), if decoding is required.
    pub decode_x: Option<f64>,
}

/// Runs the experiment, returning the mechanism rows.
pub fn run() -> Vec<Row> {
    let suite = fg_workloads::spec_suite();
    let mut bts = Vec::new();
    let mut lbr = Vec::new();
    let mut ipt = Vec::new();
    let mut ipt_decode = Vec::new();

    for w in &suite {
        let base = run_baseline(w);
        let b = run_traced(w, Mechanism::Bts);
        let l = run_traced(w, Mechanism::Lbr);
        let i = run_traced(w, Mechanism::Ipt);
        bts.push((b.account.total() / base.account.total() - 1.0) * 100.0);
        lbr.push(((l.account.total() / base.account.total() - 1.0) * 100.0).max(0.001));
        ipt.push((i.account.total() / base.account.total() - 1.0) * 100.0);

        // IPT decoding: instruction-flow reconstruction of the whole trace.
        let cost = fg_cpu::CostModel::calibrated();
        let mut m = fg_cpu::Machine::new(&w.image, 0x4000);
        let mut unit =
            fg_cpu::IptUnit::flowguard(0x4000, fg_ipt::Topa::two_regions(1 << 23).expect("topa"));
        unit.start(w.image.entry(), 0x4000);
        m.trace = fg_cpu::TraceUnit::Ipt(unit);
        let mut k = fg_kernel::Kernel::with_input(&w.default_input);
        m.run(&mut k, crate::measure::BUDGET);
        m.trace.as_ipt_mut().expect("ipt").flush();
        let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
        let flow = FlowDecoder::new(&w.image).decode(&bytes).expect("decodes");
        let tips = flow
            .branches
            .iter()
            .filter(|b| {
                use fg_isa::insn::CofiKind::*;
                matches!(b.kind, IndCall | IndJmp | Ret)
            })
            .count() as f64;
        let decode_cycles = flow.insns_walked as f64 * cost.flow_decode_insn_cycles
            + tips * cost.flow_decode_tip_cycles;
        ipt_decode.push(decode_cycles / m.account.exec);
    }

    vec![
        Row { name: "BTS", tracing_pct: geomean(&bts), decode_x: None },
        Row { name: "LBR", tracing_pct: geomean(&lbr), decode_x: None },
        Row { name: "IPT", tracing_pct: geomean(&ipt), decode_x: Some(geomean(&ipt_decode)) },
    ]
}

/// Prints the table.
pub fn print() {
    let rows = run();
    let mut t = Table::new(&["", "Precise", "Tracing overhead", "Decoding overhead", "Filtering"]);
    for r in &rows {
        let (precise, decode, filtering) = match r.name {
            "BTS" => ("Full", "None (records are plain)".to_string(), "None"),
            "LBR" => ("Low (16 entries)", "Very low".to_string(), "CPL, CoFI type"),
            _ => {
                ("Full", format!("High ({:.0}x)", r.decode_x.expect("ipt decodes")), "CPL, CR3, IP")
            }
        };
        t.row(vec![
            r.name.to_string(),
            precise.to_string(),
            format!("{}%", fmt(r.tracing_pct, 2)),
            decode,
            filtering.to_string(),
        ]);
    }
    t.print("Table 1 — hardware control-flow tracing mechanisms (geomean, SPEC profiles)");
    println!("\npaper: BTS high (~50x = ~5000%), LBR <1%, IPT ~3% tracing with high decode cost");
}
