//! Measurement primitives shared by all table/figure binaries.

use fg_cpu::cost::CostModel;
use fg_cpu::machine::{Machine, StopReason};
use fg_cpu::trace::{BtsUnit, IptUnit, LbrFilter, LbrUnit, TraceUnit};
use fg_cpu::CycleAccount;
use fg_ipt::topa::Topa;
use fg_kernel::Kernel;
use fg_workloads::Workload;
use flowguard::{Deployment, FlowGuardConfig};

/// Instruction budget for measurement runs.
pub const BUDGET: u64 = 200_000_000;

/// Which hardware tracing mechanism a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Tracing off (baseline).
    None,
    /// Intel Processor Trace (CR3-filtered, ToPA output).
    Ipt,
    /// Branch Trace Store.
    Bts,
    /// Last Branch Record, 16 entries, indirect-only filter.
    Lbr,
}

/// Metrics of one (unprotected) run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Workload name.
    pub name: String,
    /// Stop reason.
    pub stop: StopReason,
    /// Cycle accounting.
    pub account: CycleAccount,
    /// Instructions retired.
    pub insns: u64,
    /// CoFI instructions retired.
    pub cofi: u64,
    /// Trace bytes produced (IPT only).
    pub trace_bytes: u64,
    /// TIP-producing branches retired (indirect + returns).
    pub tips: u64,
}

impl RunMetrics {
    /// Total overhead versus pure execution, in percent.
    pub fn overhead_pct(&self) -> f64 {
        self.account.overhead() * 100.0
    }
}

fn count_tips(m: &Machine) -> u64 {
    m.branch_log.as_ref().map_or(0, |log| {
        log.iter()
            .filter(|b| {
                use fg_isa::insn::CofiKind::*;
                matches!(b.kind, IndCall | IndJmp | Ret)
            })
            .count() as u64
    })
}

/// Runs a workload with no tracing (the baseline).
pub fn run_baseline(w: &Workload) -> RunMetrics {
    run_traced(w, Mechanism::None)
}

/// Runs a workload under one tracing mechanism (no checking).
pub fn run_traced(w: &Workload, mech: Mechanism) -> RunMetrics {
    let cr3 = 0x4000;
    let mut m = Machine::new(&w.image, cr3);
    m.enable_branch_log();
    match mech {
        Mechanism::None => {}
        Mechanism::Ipt => {
            let mut unit = IptUnit::flowguard(cr3, Topa::two_regions(1 << 22).expect("topa"));
            unit.start(w.image.entry(), cr3);
            m.trace = TraceUnit::Ipt(unit);
        }
        Mechanism::Bts => m.trace = TraceUnit::Bts(BtsUnit::new(1 << 16)),
        Mechanism::Lbr => m.trace = TraceUnit::Lbr(LbrUnit::new(16, LbrFilter::indirect_only())),
    }
    let mut k = Kernel::with_input(&w.default_input);
    let stop = m.run(&mut k, BUDGET);
    if let Some(u) = m.trace.as_ipt_mut() {
        u.flush();
    }
    let trace_bytes = m.trace.as_ipt().map_or(0, fg_cpu::IptUnit::bytes_emitted);
    let tips = count_tips(&m);
    RunMetrics {
        name: w.name.clone(),
        stop,
        account: m.account,
        insns: m.insns_retired,
        cofi: m.cofi_retired,
        trace_bytes,
        tips,
    }
}

/// Metrics of one protected run.
#[derive(Debug, Clone)]
pub struct ProtectedMetrics {
    /// Base run metrics (account includes decode/check/other from the
    /// engine).
    pub run: RunMetrics,
    /// Engine statistics snapshot.
    pub checks: u64,
    /// Slow-path invocations.
    pub slow: u64,
    /// Violations detected.
    pub violations: usize,
    /// Fraction of checks that escalated to the slow path.
    pub slow_fraction: f64,
}

/// Builds a trained deployment for a workload: analyse, then train on the
/// benign default input plus one request per handler command.
pub fn trained_deployment(w: &Workload) -> Deployment {
    let mut d = Deployment::analyze(&w.image);
    let mut corpus = vec![w.default_input.clone()];
    if w.category == fg_workloads::Category::Server {
        for c in 0..8u8 {
            corpus.push(fg_workloads::request(c, b"training-payload-x"));
            corpus.push(fg_workloads::request(c, b"tp"));
        }
    }
    d.train(&corpus);
    d
}

/// Verifies the trained artifact of every bundled server before the
/// experiments run: a corrupted analysis pipeline fails fast here instead
/// of silently skewing every downstream number.
///
/// # Panics
///
/// Panics with the diagnostic list if any artifact fails verification.
pub fn verify_preflight() {
    for w in &fg_workloads::servers() {
        let d = trained_deployment(w);
        let report = d.verify();
        assert!(
            !report.has_errors(),
            "{}: deployment artifact failed verification:\n{report}",
            w.name
        );
    }
    println!("artifact preflight: all server deployments pass verification\n");
}

/// Runs a workload under full FlowGuard protection.
pub fn run_protected(
    w: &Workload,
    d: &Deployment,
    cfg: FlowGuardConfig,
    cost: CostModel,
) -> ProtectedMetrics {
    let mut p = d.launch_with_cost(&w.default_input, cfg, cost);
    let stop = p.run(BUDGET);
    let trace_bytes = p.machine.trace.as_ipt().map_or(0, fg_cpu::IptUnit::bytes_emitted);
    let s = p.stats.snapshot();
    ProtectedMetrics {
        run: RunMetrics {
            name: w.name.clone(),
            stop,
            account: p.machine.account,
            insns: p.machine.insns_retired,
            cofi: p.machine.cofi_retired,
            trace_bytes,
            tips: 0,
        },
        checks: s.checks,
        slow: s.slow_invocations,
        violations: s.violations.len(),
        slow_fraction: s.slow_fraction(),
    }
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Geometric mean that tolerates zero/negative samples by flooring them at
/// `floor` (useful for overhead percentages that can round to zero).
pub fn geomean_floored(xs: &[f64], floor: f64) -> f64 {
    let adj: Vec<f64> = xs.iter().map(|&x| x.max(floor)).collect();
    geomean(&adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_calc() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0, 1.0]);
    }

    #[test]
    fn floored_geomean_tolerates_zeros() {
        let g = geomean_floored(&[0.0, 1.0], 0.01);
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn baseline_run_has_no_overhead() {
        let w = fg_workloads::dd();
        let m = run_baseline(&w);
        assert_eq!(m.account.trace, 0.0);
        assert!(m.overhead_pct() < 1e-9);
        assert!(m.insns > 1000);
    }

    #[test]
    fn ipt_run_produces_trace_bytes() {
        let w = fg_workloads::tar();
        let m = run_traced(&w, Mechanism::Ipt);
        assert!(m.trace_bytes > 0);
        assert!(m.account.trace > 0.0);
        assert!(m.tips > 0);
    }
}
