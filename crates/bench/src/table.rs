//! Minimal aligned-column table printer for harness output.

use std::fmt::Write as _;

/// A printable table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Prints the table under a title.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        print!("{}", self.render());
    }
}

/// Formats a float with the given decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["nginx".into(), "4.37".into()]);
        t.row(vec!["x".into(), "100".into()]);
        let s = t.render();
        assert!(s.contains("| nginx | 4.37  |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
