//! # fg-bench — the harness regenerating every table and figure of the paper
//!
//! Shared measurement infrastructure for the `table*`, `fig5*`, `sec2_*`,
//! `micro_*`, `param_sweep`, `hw_extensions`, and `attacks_eval` binaries.
//! Each binary prints the corresponding table/series of the HPCA 2017
//! FlowGuard paper; `run_all` chains them and is what `EXPERIMENTS.md`
//! records.

#![deny(unsafe_code)]

pub mod experiments;
pub mod measure;
pub mod table;

pub use measure::{
    geomean, run_baseline, run_protected, run_traced, trained_deployment, Mechanism,
    ProtectedMetrics, RunMetrics,
};
pub use table::Table;
