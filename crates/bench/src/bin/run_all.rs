//! Runs every experiment in sequence — the full reproduction of the paper's
//! evaluation section. Output of this binary is recorded in EXPERIMENTS.md.
fn main() {
    use fg_bench::experiments as e;
    println!("# FlowGuard (HPCA 2017) — full evaluation reproduction\n");
    fg_bench::measure::verify_preflight();
    e::table2::print();
    e::table1::print();
    e::sec2::print();
    e::table4::print();
    e::table5::print();
    e::attacks_eval::print();
    e::params::print();
    e::fig5::servers(fg_cpu::CostModel::calibrated());
    e::fig5::utilities(fg_cpu::CostModel::calibrated());
    e::fig5::spec(fg_cpu::CostModel::calibrated());
    e::fig5::print_training_curve();
    e::micro::print();
    e::hw::print();
    e::baselines::print();
    e::retc::print();
    e::pathmatch::print();
    e::multiproc::print();
    e::cache::print();
    e::fastpath::print();
    e::slowpath::print();
    e::streaming::print();
    e::fleet::print();
    println!("\nAll experiments completed.");
}
