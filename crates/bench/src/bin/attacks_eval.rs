//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::attacks_eval`.
fn main() {
    fg_bench::experiments::attacks_eval::print();
}
