//! Figure 5c — SPEC profile overhead.
fn main() {
    fg_bench::experiments::fig5::spec(fg_cpu::CostModel::calibrated());
}
