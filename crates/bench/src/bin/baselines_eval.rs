//! §8.2 baseline comparison. See `fg_bench::experiments::baselines`.
fn main() {
    fg_bench::experiments::baselines::print();
}
