//! Figure 5d — fuzzing-training benefit curve.
fn main() {
    fg_bench::experiments::fig5::print_training_curve();
}
