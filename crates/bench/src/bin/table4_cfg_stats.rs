//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::table4`.
fn main() {
    fg_bench::experiments::table4::print();
}
