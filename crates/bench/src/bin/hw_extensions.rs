//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::hw`.
fn main() {
    fg_bench::experiments::hw::print();
}
