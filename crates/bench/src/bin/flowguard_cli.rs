//! `flowguard-cli` — drive the full pipeline from the command line.
//!
//! ```text
//! flowguard_cli analyze  <workload> <artifact.json>        # ① static analysis
//! flowguard_cli train    <artifact.json> [--fuzz N]        # ② credit labeling
//! flowguard_cli verify   <artifact.json>                   # static artifact checks
//! flowguard_cli audit    <workload|artifact.json> [--json FILE]
//! flowguard_cli info     <artifact.json>                   # inspect an artifact
//! flowguard_cli run      <artifact.json> [--input FILE]    # ③–⑤ protected run
//! flowguard_cli stats    <artifact.json> [--input FILE] [--prom] [--prom-summaries]
//!                        [--streaming] [--consumer] [--phases] [--save FILE] [--diff FILE]
//! flowguard_cli health   <artifact.json> [--input FILE] [--streaming] [--slice N]
//! flowguard_cli top      <artifact.json> [--input FILE] [--streaming] [--slice N]
//! flowguard_cli events   <artifact.json> [--input FILE] [--last N]
//! flowguard_cli attack   <artifact.json> <rop|srop|ret2lib|flush|kbouncer>
//! flowguard_cli fleet    stats [--procs N] [--json] [--prom] [--single-cr3] [--consumer]
//! flowguard_cli workloads                                  # list bundled targets
//! ```
//!
//! Workloads are the bundled evaluation programs (`nginx`, `nginx-patched`,
//! `vsftpd`, `openssh`, `exim`, `tar`, `dd`, `make`, `scp`, or any SPEC
//! profile name). Artifacts are the JSON files produced by
//! [`flowguard::Deployment::save`].
//!
//! Machine-readable output (the `stats` JSON / Prometheus dump, the `events`
//! listing, tables) goes to stdout; progress and error diagnostics go to
//! stderr. Every failure path exits nonzero (2 for usage errors, 1 for
//! everything else, including an undetected `attack` and a `health` verdict
//! of Degraded or Critical).

use flowguard::{
    Deployment, FleetConfig, FleetSupervisor, FlowGuardConfig, HealthStatus, PhaseSpan,
    TelemetrySnapshot,
};
use std::process::ExitCode;

fn pick_workload(name: &str) -> Option<fg_workloads::Workload> {
    Some(match name {
        "nginx" => fg_workloads::nginx(),
        "nginx-patched" => fg_workloads::nginx_patched(),
        "vsftpd" => fg_workloads::vsftpd(),
        "openssh" => fg_workloads::openssh(),
        "exim" => fg_workloads::exim(),
        "tar" => fg_workloads::tar(),
        "dd" => fg_workloads::dd(),
        "make" => fg_workloads::make(),
        "scp" => fg_workloads::scp(),
        other => fg_workloads::spec_by_name(other)?,
    })
}

fn default_input_for(d: &Deployment) -> Vec<u8> {
    // Artifacts do not record their source workload; a generic benign
    // request mix works for the bundled servers and is harmless for others.
    let _ = d;
    fg_workloads::benign_input(24)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  flowguard_cli workloads\n  flowguard_cli analyze <workload> <artifact.json>\n  \
         flowguard_cli train <artifact.json> [--fuzz N]\n  \
         flowguard_cli verify <artifact.json>\n  \
         flowguard_cli audit <workload|artifact.json> [--json FILE]\n  \
         flowguard_cli info <artifact.json>\n  \
         flowguard_cli run <artifact.json> [--input FILE]\n  \
         flowguard_cli stats <artifact.json> [--input FILE] [--prom] [--prom-summaries] \
         [--streaming] [--consumer] [--phases] [--save FILE] [--diff FILE]\n  \
         flowguard_cli health <artifact.json> [--input FILE] [--streaming] [--slice N]\n  \
         flowguard_cli top <artifact.json> [--input FILE] [--streaming] [--slice N]\n  \
         flowguard_cli events <artifact.json> [--input FILE] [--last N]\n  \
         flowguard_cli attack <artifact.json> <rop|srop|ret2lib|flush|kbouncer>\n  \
         flowguard_cli fleet stats [--procs N] [--json] [--prom] [--single-cr3] [--consumer]"
    );
    ExitCode::from(2)
}

fn load_artifact(path: &str) -> Result<Deployment, ExitCode> {
    Deployment::load(path).map_err(|e| {
        eprintln!("cannot load artifact: {e}");
        ExitCode::FAILURE
    })
}

/// Runs the protected workload behind `stats` / `events` and returns the
/// engine telemetry handle.
fn protected_run(
    d: &Deployment,
    input: &[u8],
) -> (fg_cpu::StopReason, std::sync::Arc<flowguard::EngineTelemetry>) {
    let mut p = d.launch(input, FlowGuardConfig::default());
    let stop = p.run(2_000_000_000);
    (stop, p.stats)
}

/// Parses `[--input FILE]` returning the workload input, or an exit code on
/// a bad flag / unreadable file.
fn parse_input_flag<'a>(
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<(Vec<u8>, Option<&'a str>), ExitCode> {
    match it.next() {
        Some("--input") => {
            let Some(f) = it.next() else { return Err(usage()) };
            match std::fs::read(f) {
                Ok(b) => Ok((b, it.next())),
                Err(e) => {
                    eprintln!("cannot read input: {e}");
                    Err(ExitCode::FAILURE)
                }
            }
        }
        other => Ok((Vec::new(), other)),
    }
}

/// Instruction budget of one live-view slice (`health` / `top` tick).
const DEFAULT_SLICE_INSNS: u64 = 2_000_000;

/// Overall instruction budget of a CLI-driven protected run.
const RUN_BUDGET_INSNS: u64 = 2_000_000_000;

/// Parses the live-view flags `[--input FILE] [--streaming] [--slice N]`
/// shared by `health` and `top`; `N` is the per-slice instruction budget.
fn parse_live_flags<'a>(
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<(Vec<u8>, bool, u64), ExitCode> {
    let mut input = Vec::new();
    let mut streaming = false;
    let mut slice: u64 = DEFAULT_SLICE_INSNS;
    while let Some(a) = it.next() {
        match a {
            "--input" => {
                let Some(f) = it.next() else { return Err(usage()) };
                match std::fs::read(f) {
                    Ok(b) => input = b,
                    Err(e) => {
                        eprintln!("cannot read input: {e}");
                        return Err(ExitCode::FAILURE);
                    }
                }
            }
            "--streaming" => streaming = true,
            "--slice" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => slice = n,
                _ => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    Ok((input, streaming, slice))
}

/// Prints the per-phase cycle-attribution table from a telemetry snapshot:
/// one row per phase, background phases marked, and the coverage line
/// comparing the check-phase span total against the measured check-latency
/// total (the ≥95% gate of `BENCH_observability.json`).
fn print_phase_table(ts: &TelemetrySnapshot) {
    println!("{:<14} {:>16} {:>10} {:>10}", "phase", "cycles", "spans", "% check");
    let measured = ts.check_latency.mean * ts.check_latency.count as f64;
    for p in &ts.spans.phases {
        let is_check = PhaseSpan::ALL.iter().any(|&s| s.label() == p.phase && s.is_check_phase());
        let share = if measured > 0.0 && is_check { p.cycles / measured * 100.0 } else { 0.0 };
        let tag = if is_check { format!("{share:>9.1}%") } else { "     (bg)".to_string() };
        println!("{:<14} {:>16.0} {:>10} {}", p.phase, p.cycles, p.spans, tag);
    }
    println!(
        "check-phase total {:.0} of {:.0} measured check cycles ({:.1}% attributed)",
        ts.spans.check_cycles,
        measured,
        if measured > 0.0 { ts.spans.check_cycles / measured * 100.0 } else { 0.0 }
    );
    let o = &ts.spans.overhead;
    println!(
        "profiler self-overhead: {:.0} ns/record over {} sampled records (~{:.0} ns total)",
        o.mean_ns_per_record, o.sampled_records, o.estimated_total_ns
    );
}

/// Prints the delta table between a saved snapshot and the current one.
fn print_snapshot_diff(saved: &TelemetrySnapshot, now: &TelemetrySnapshot) {
    println!("{:<26} {:>16} {:>16} {:>16}", "metric", "saved", "current", "delta");
    let rows_u64: &[(&str, u64, u64)] = &[
        ("checks", saved.checks, now.checks),
        ("events_recorded", saved.events_recorded, now.events_recorded),
        ("span_records", saved.spans.records, now.spans.records),
        ("check_samples", saved.check_latency.count, now.check_latency.count),
    ];
    for (name, a, b) in rows_u64 {
        println!("{name:<26} {a:>16} {b:>16} {:>+16}", *b as i64 - *a as i64);
    }
    let mut rows_f64 = vec![
        ("span_check_cycles".to_string(), saved.spans.check_cycles, now.spans.check_cycles),
        ("span_total_cycles".to_string(), saved.spans.total_cycles, now.spans.total_cycles),
    ];
    for phase in PhaseSpan::ALL {
        rows_f64.push((
            format!("phase_{}_cycles", phase.label()),
            saved.spans.phase_cycles(phase),
            now.spans.phase_cycles(phase),
        ));
    }
    for (name, a, b) in rows_f64 {
        println!("{name:<26} {a:>16.0} {b:>16.0} {:>+16.0}", b - a);
    }
    println!("health: {} -> {}", saved.health.status.label(), now.health.status.label());
}

fn sysno_label(nr: u64) -> String {
    if nr == flowguard::telemetry::PMI_SYSNO {
        "pmi".to_string()
    } else {
        match fg_kernel::Sysno::from_u64(nr) {
            Some(s) => s.name().to_string(),
            None => format!("sys#{nr}"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("workloads") => {
            for w in
                ["nginx", "nginx-patched", "vsftpd", "openssh", "exim", "tar", "dd", "make", "scp"]
            {
                println!("{w}");
            }
            for p in fg_workloads::SPEC_TABLE {
                println!("{}", p.name);
            }
            ExitCode::SUCCESS
        }
        Some("analyze") => {
            let (Some(wname), Some(out)) = (it.next(), it.next()) else { return usage() };
            let Some(w) = pick_workload(wname) else {
                eprintln!("unknown workload `{wname}` — see `flowguard_cli workloads`");
                return ExitCode::FAILURE;
            };
            let d = Deployment::analyze(&w.image);
            eprintln!(
                "analyzed {wname}: {} modules, {} instructions, ITC |V|={} |E|={}",
                w.image.modules().len(),
                w.image.total_insns(),
                d.itc.node_count(),
                d.itc.edge_count()
            );
            if let Err(e) = d.save(out) {
                eprintln!("cannot write artifact: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("artifact written to {out}");
            ExitCode::SUCCESS
        }
        Some("train") => {
            let Some(path) = it.next() else { return usage() };
            let fuzz_execs = match (it.next(), it.next()) {
                (Some("--fuzz"), Some(n)) => n.parse::<u64>().ok(),
                (None, _) => None,
                _ => return usage(),
            };
            let mut d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let stats = if let Some(execs) = fuzz_execs {
                let seeds =
                    vec![fg_workloads::request(0, b"seed"), fg_workloads::request(1, b"s2")];
                let (stats, history) = d.fuzz_train(seeds, execs, fg_fuzz::FuzzConfig::default());
                if let Some(last) = history.last() {
                    eprintln!(
                        "fuzzer: {} execs, {} paths, {} crashes",
                        last.execs, last.paths, last.crashes
                    );
                }
                stats
            } else {
                d.train(&[default_input_for(&d)])
            };
            eprintln!(
                "trained: {} inputs, {} TIP pairs, {} edges high-credit, cred fraction {:.1}%",
                stats.inputs,
                stats.pairs,
                stats.edges_labeled,
                stats.cred_fraction * 100.0
            );
            if let Err(e) = d.save(path) {
                eprintln!("cannot update artifact: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("verify") => {
            let Some(path) = it.next() else { return usage() };
            // Load unchecked so a rejected artifact can still be reported
            // rule by rule (the verifying `load` would refuse it outright).
            let d = match Deployment::load_unchecked(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot load artifact: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = d.verify();
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            if report.has_errors() {
                eprintln!(
                    "FAIL: {} error(s), {} warning(s)",
                    report.error_count(),
                    report.warning_count()
                );
                ExitCode::FAILURE
            } else {
                println!(
                    "OK: artifact passes verification ({} warning(s))",
                    report.warning_count()
                );
                ExitCode::SUCCESS
            }
        }
        Some("audit") => {
            let Some(target) = it.next() else { return usage() };
            let json_out = match (it.next(), it.next()) {
                (Some("--json"), Some(f)) => Some(f),
                (None, _) => None,
                _ => return usage(),
            };
            // A bundled workload name audits a fresh analysis; anything
            // else is an artifact path (loaded unchecked so a broken
            // artifact gets the full finding list instead of a load error).
            let d = match pick_workload(target) {
                Some(w) => Deployment::analyze(&w.image),
                None => match Deployment::load_unchecked(target) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("`{target}` is neither a workload nor a loadable artifact: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let report = fg_audit::audit(&d);
            print!("{report}");
            if let Some(f) = json_out {
                let json = match serde_json::to_string(&report) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("cannot serialise report: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = std::fs::write(f, json + "\n") {
                    eprintln!("cannot write report: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("report written to {f}");
            }
            if report.has_soundness_findings() {
                eprintln!(
                    "FAIL: {} soundness finding(s)",
                    report.count_by_severity(fg_audit::Severity::Error)
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("info") => {
            let Some(path) = it.next() else { return usage() };
            match load_artifact(path) {
                Ok(d) => {
                    println!("modules:       {}", d.image.modules().len());
                    for m in d.image.modules() {
                        println!("  {:10} base {:#x}  {} bytes", m.name, m.base, m.bytes.len());
                    }
                    println!("ITC nodes:     {}", d.itc.node_count());
                    println!("ITC edges:     {}", d.itc.edge_count());
                    println!("high-credit:   {:.1}%", d.itc.high_credit_fraction() * 100.0);
                    println!("path grams:    {}", d.itc.path_gram_count());
                    println!("resident size: {:.1} KiB", d.itc.memory_bytes() as f64 / 1024.0);
                    if let Some(t) = d.train_stats {
                        println!("last training: {} inputs, {} pairs", t.inputs, t.pairs);
                    }
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        Some("run") => {
            let Some(path) = it.next() else { return usage() };
            let (input, trailing) = match parse_input_flag(&mut it) {
                Ok(v) => v,
                Err(code) => return code,
            };
            if trailing.is_some() {
                return usage();
            }
            let d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let input = if input.is_empty() { default_input_for(&d) } else { input };
            let mut p = d.launch(&input, FlowGuardConfig::default());
            let stop = p.run(2_000_000_000);
            let s = p.stats.snapshot();
            println!("stop:            {stop}");
            println!("endpoint checks: {}", s.checks);
            println!("fast clean:      {}", s.fast_clean);
            println!("slow upcalls:    {}", s.slow_invocations);
            println!("violations:      {}", s.violations.len());
            for v in &s.violations {
                println!("  at {}: {}", v.endpoint, v.detail);
            }
            let exec = p.machine.account.exec;
            if exec > 0.0 {
                println!("overhead:        {:.2}%", p.machine.account.overhead() * 100.0);
            }
            if s.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("stats") => {
            let Some(path) = it.next() else { return usage() };
            let mut input = Vec::new();
            let mut prom = false;
            let mut prom_summaries = false;
            let mut streaming = false;
            let mut consumer = false;
            let mut phases = false;
            let mut save: Option<&str> = None;
            let mut diff: Option<&str> = None;
            while let Some(a) = it.next() {
                match a {
                    "--input" => {
                        let Some(f) = it.next() else { return usage() };
                        match std::fs::read(f) {
                            Ok(b) => input = b,
                            Err(e) => {
                                eprintln!("cannot read input: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    "--prom" => prom = true,
                    "--prom-summaries" => prom_summaries = true,
                    "--streaming" => streaming = true,
                    "--consumer" => {
                        streaming = true;
                        consumer = true;
                    }
                    "--phases" => phases = true,
                    "--save" => {
                        let Some(f) = it.next() else { return usage() };
                        save = Some(f);
                    }
                    "--diff" => {
                        let Some(f) = it.next() else { return usage() };
                        diff = Some(f);
                    }
                    _ => return usage(),
                }
            }
            // The baseline snapshot must parse before the (slow) run.
            let saved: Option<TelemetrySnapshot> = match diff {
                Some(f) => match std::fs::read_to_string(f)
                    .map_err(|e| e.to_string())
                    .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
                {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("cannot load snapshot {f}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let input = if input.is_empty() { default_input_for(&d) } else { input };
            let cfg =
                FlowGuardConfig { streaming, consumer_thread: consumer, ..Default::default() };
            let mut p = d.launch(&input, cfg);
            let stop = p.run(2_000_000_000);
            let stats = p.stats;
            eprintln!("stop: {stop}");
            let ts = stats.telemetry_snapshot();
            if streaming {
                eprintln!(
                    "streaming: {} drains, {} bytes drained, {:.2} copied B/KiB, \
                     residue p50/p99 {}/{}",
                    ts.stream_drains,
                    ts.stream_drained_bytes,
                    ts.copied_per_drained_kib(),
                    ts.frontier_lag.p50,
                    ts.frontier_lag.p99
                );
            }
            if consumer {
                eprintln!(
                    "consumer: {} wakeups, {} drains ({:.0}% duty), {} bytes, lag p50/p99 {}/{}",
                    ts.consumer_wakeups,
                    ts.consumer_drains,
                    ts.consumer_utilization() * 100.0,
                    ts.consumer_drained_bytes,
                    ts.consumer_lag.p50,
                    ts.consumer_lag.p99
                );
            }
            if let Some(f) = save {
                match serde_json::to_string(&ts) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(f, json + "\n") {
                            eprintln!("cannot write snapshot: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("snapshot written to {f}");
                    }
                    Err(e) => {
                        eprintln!("cannot serialise telemetry: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if prom || prom_summaries {
                print!("{}", stats.prometheus_text_opts(prom_summaries));
            } else if phases {
                print_phase_table(&ts);
            } else if let Some(saved) = &saved {
                print_snapshot_diff(saved, &ts);
            } else if save.is_none() {
                match serde_json::to_string(&ts) {
                    Ok(json) => println!("{json}"),
                    Err(e) => {
                        eprintln!("cannot serialise telemetry: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Some("health") => {
            let Some(path) = it.next() else { return usage() };
            let (input, streaming, slice) = match parse_live_flags(&mut it) {
                Ok(v) => v,
                Err(code) => return code,
            };
            let d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let input = if input.is_empty() { default_input_for(&d) } else { input };
            let cfg = FlowGuardConfig { streaming, ..Default::default() };
            let mut p = d.launch(&input, cfg);
            // Slice-driven run: each slice feeds the watchdog one rolling
            // window sample (ProtectedProcess::run ticks on return).
            let mut budget = RUN_BUDGET_INSNS;
            let mut stop = p.run(slice.min(budget));
            while stop == fg_cpu::StopReason::InsnLimit && budget > slice {
                budget -= slice;
                stop = p.run(slice.min(budget));
            }
            eprintln!("stop: {stop}");
            let report = p.stats.health_report();
            println!(
                "health: {} ({} window samples, {} checks in window)",
                report.status.label(),
                report.samples,
                report.window_checks
            );
            for f in &report.findings {
                println!("  [{}] {}: {}", f.status.label(), f.rule, f.detail);
            }
            if report.status == HealthStatus::Healthy {
                ExitCode::SUCCESS
            } else {
                eprintln!("health is {}", report.status.label());
                ExitCode::FAILURE
            }
        }
        Some("top") => {
            let Some(path) = it.next() else { return usage() };
            let (input, streaming, slice) = match parse_live_flags(&mut it) {
                Ok(v) => v,
                Err(code) => return code,
            };
            let d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let input = if input.is_empty() { default_input_for(&d) } else { input };
            let cfg = FlowGuardConfig { streaming, ..Default::default() };
            let mut p = d.launch(&input, cfg);
            println!(
                "{:>6} {:>8} {:>8} {:>8} {:>14} {:>10} {:>9}",
                "slice", "checks", "fast", "slow", "span_cycles", "lag", "health"
            );
            let mut prev = p.stats.telemetry_snapshot();
            let mut prev_stats = p.stats.snapshot();
            for i in 1..=RUN_BUDGET_INSNS / slice.max(1) {
                let stop = p.run(slice);
                let ts = p.stats.telemetry_snapshot();
                let s = p.stats.snapshot();
                println!(
                    "{:>6} {:>8} {:>8} {:>8} {:>14.0} {:>10} {:>9}",
                    i,
                    ts.checks - prev.checks,
                    s.fast_clean - prev_stats.fast_clean,
                    s.slow_invocations - prev_stats.slow_invocations,
                    ts.spans.total_cycles - prev.spans.total_cycles,
                    ts.last_frontier_lag,
                    ts.health.status.label()
                );
                prev = ts;
                prev_stats = s;
                if stop != fg_cpu::StopReason::InsnLimit {
                    eprintln!("stop: {stop}");
                    break;
                }
            }
            ExitCode::SUCCESS
        }
        Some("events") => {
            let Some(path) = it.next() else { return usage() };
            let (input, trailing) = match parse_input_flag(&mut it) {
                Ok(v) => v,
                Err(code) => return code,
            };
            let last = match trailing {
                Some("--last") => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => n,
                    None => return usage(),
                },
                None => 32,
                _ => return usage(),
            };
            let d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let input = if input.is_empty() { default_input_for(&d) } else { input };
            let (stop, stats) = protected_run(&d, &input);
            eprintln!("stop: {stop}");
            println!(
                "{:>8}  {:<14} {:<12} {:>10} {:>8} {:>12}",
                "seq", "endpoint", "verdict", "delta", "pairs", "cycles"
            );
            for (seq, ev) in stats.recent_events(last) {
                println!(
                    "{:>8}  {:<14} {:<12} {:>10} {:>8} {:>12.0}",
                    seq,
                    sysno_label(ev.sysno),
                    ev.verdict.label(),
                    ev.delta_bytes,
                    ev.pairs_checked,
                    ev.total_cycles()
                );
            }
            eprintln!("{} events recorded in total", stats.events_recorded());
            ExitCode::SUCCESS
        }
        Some("attack") => {
            let (Some(path), Some(kind)) = (it.next(), it.next()) else { return usage() };
            let d = match load_artifact(path) {
                Ok(d) => d,
                Err(code) => return code,
            };
            let g = fg_attacks::find_gadgets(&d.image);
            let payload = match kind {
                "rop" => fg_attacks::rop_write(&d.image, &g),
                "srop" => fg_attacks::srop_execve(&d.image, &g),
                "ret2lib" => fg_attacks::ret_to_lib(&d.image, &g),
                "flush" => fg_attacks::history_flush(&d.image, &g, 12),
                "kbouncer" => fg_attacks::kbouncer_evasion(&d.image, 12),
                other => {
                    eprintln!("unknown attack `{other}`");
                    return ExitCode::FAILURE;
                }
            };
            let free = fg_attacks::run_unprotected(&d.image, &payload);
            println!(
                "unprotected: {} (output {} bytes, execve {:?})",
                free.stop,
                free.output.len(),
                free.execve
            );
            let guarded = fg_attacks::run_protected(&d, &payload, FlowGuardConfig::default());
            println!(
                "protected:   {} — {}",
                guarded.stop,
                if guarded.detected {
                    format!("DETECTED at {:?}", guarded.endpoints)
                } else {
                    "not detected".to_string()
                }
            );
            if guarded.detected {
                ExitCode::SUCCESS
            } else {
                eprintln!("attack was NOT detected");
                ExitCode::FAILURE
            }
        }
        Some("fleet") => {
            if it.next() != Some("stats") {
                return usage();
            }
            let mut procs: usize = 8;
            let mut json = false;
            let mut prom = false;
            let mut multi_cr3 = true;
            let mut consumer = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--procs" => {
                        let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        procs = n;
                    }
                    "--json" => json = true,
                    "--prom" => prom = true,
                    "--single-cr3" => multi_cr3 = false,
                    "--consumer" => consumer = true,
                    _ => return usage(),
                }
            }
            if procs == 0 {
                eprintln!("--procs must be at least 1");
                return ExitCode::from(2);
            }

            // The benchmark fleet: `procs` members round-robined over four
            // distinct server images, each on a pid-seeded benign request
            // stream, with streaming engines so background drains exercise
            // the shared scheduler.
            let images = [
                fg_workloads::nginx_patched(),
                fg_workloads::vsftpd(),
                fg_workloads::openssh(),
                fg_workloads::exim(),
            ];
            let mut cfg = FleetConfig::default();
            cfg.flowguard.streaming = true;
            cfg.flowguard.consumer_thread = consumer;
            cfg.multi_cr3 = multi_cr3;
            let mut fleet = FleetSupervisor::new(cfg);
            for pid in 0..procs {
                let w = &images[pid % images.len()];
                let corpus = vec![w.default_input.clone()];
                let input = fg_workloads::load_input(8, pid as u64);
                if let Err(report) = fleet.spawn(&w.name, &w.image, &corpus, &input) {
                    eprintln!(
                        "artifact for {} rejected: {} error(s)",
                        w.name,
                        report.error_count()
                    );
                    return ExitCode::FAILURE;
                }
            }
            eprintln!("running {procs}-process fleet ...");
            fleet.run();

            if prom {
                print!("{}", fleet.prometheus_text());
                return ExitCode::SUCCESS;
            }
            let snap = fleet.snapshot();
            if json {
                match serde_json::to_string(&snap) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        eprintln!("serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                return ExitCode::SUCCESS;
            }
            println!("fleet: {} processes (multi_cr3 {})", snap.processes.len(), snap.multi_cr3);
            println!(
                "artifact cache: {} hits / {} misses / {} rejections (hit rate {:.3})",
                snap.cache.hits,
                snap.cache.misses,
                snap.cache.rejections,
                snap.cache.hit_rate()
            );
            println!(
                "scheduler: {} checks admitted, {} drains deferred, {} executed, \
                 {} shed inline, {} dropped, max depth {}",
                snap.scheduler.checks_admitted,
                snap.scheduler.drains_enqueued,
                snap.scheduler.executed,
                snap.scheduler.shed_inline,
                snap.scheduler.dropped,
                snap.scheduler.max_queue_depth
            );
            println!(
                "tracing: {} context switches, {:.0} reconfig cycles",
                snap.switches, snap.reconfig_cycles
            );
            println!(
                "checks: {} total, {} violations, p99 latency {} cycles",
                snap.checks_total, snap.violations_total, snap.check_latency.p99
            );
            let consumer_drains: u64 =
                snap.processes.iter().map(|p| p.telemetry.consumer_drains).sum();
            let consumer_bytes: u64 =
                snap.processes.iter().map(|p| p.telemetry.consumer_drained_bytes).sum();
            let consumer_wakeups: u64 =
                snap.processes.iter().map(|p| p.telemetry.consumer_wakeups).sum();
            if consumer_wakeups > 0 {
                println!(
                    "consumer: {consumer_drains} pooled drains over {consumer_wakeups} wakeups \
                     ({:.0}% duty), {consumer_bytes} bytes off the poll slots",
                    consumer_drains as f64 / consumer_wakeups as f64 * 100.0
                );
            }
            println!(
                "\n{:>4}  {:<14} {:>12}  {:>8}  {:>6}  stop",
                "pid", "name", "insns", "checks", "viol"
            );
            for p in &snap.processes {
                println!(
                    "{:>4}  {:<14} {:>12}  {:>8}  {:>6}  {}",
                    p.pid,
                    p.name,
                    p.insns_retired,
                    p.telemetry.checks,
                    p.violated,
                    p.stop.as_deref().unwrap_or("running")
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
