//! Standalone fleet-scale enforcement benchmark runner.
//!
//! Prints the fleet metric tables (64 concurrent processes over 4 distinct
//! images, plus the 1/8/64 scaling sweep and the concurrent attack fleet),
//! writes `BENCH_fleet.json` to the working directory, and — with
//! `--check-baseline <path>` — exits non-zero if any gate fails: artifact
//! cache hit rate ≥ 0.9, p99 check latency within 2× of solo, zero dropped
//! checks, every deferred drain executed, and 100% of the concurrent
//! attacks detected. CI runs this as part of the smoke-bench gate.

use fg_bench::experiments::fleet;

const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check-baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fleet_bench [--check-baseline <path>]");
                std::process::exit(2);
            }
        }
    }

    let current = fleet::run();
    fleet::print_table(&current);

    if let Err(e) = fleet::write_json(&current, fleet::JSON_PATH) {
        eprintln!("failed to write {}: {e}", fleet::JSON_PATH);
        std::process::exit(1);
    }
    println!("\nwrote {}", fleet::JSON_PATH);

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: fleet::FleetBench = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        let regressions = fleet::regressions(&current, &baseline, REGRESSION_FACTOR);
        if regressions.is_empty() {
            println!("baseline check passed ({path}, tolerance {REGRESSION_FACTOR}x)");
        } else {
            eprintln!("\nbaseline check FAILED ({path}, tolerance {REGRESSION_FACTOR}x):");
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}
