//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::table2`.
fn main() {
    fg_bench::experiments::table2::print();
}
