//! Standalone slow-path benchmark runner.
//!
//! Prints the slow-path metric table (PSB-sharded decode speedup,
//! checkpoint re-decode avoidance), writes `BENCH_slowpath.json` to the
//! working directory, and — with `--check-baseline <path>` — exits non-zero
//! if any hardware-independent ratio regressed by more than 2x against the
//! checked-in baseline. CI runs this as the smoke-bench gate.

use fg_bench::experiments::slowpath;

const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check-baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: slowpath_bench [--check-baseline <path>]");
                std::process::exit(2);
            }
        }
    }

    let current = slowpath::run();
    slowpath::print_table(&current);

    if let Err(e) = slowpath::write_json(&current, slowpath::JSON_PATH) {
        eprintln!("failed to write {}: {e}", slowpath::JSON_PATH);
        std::process::exit(1);
    }
    println!("\nwrote {}", slowpath::JSON_PATH);

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: slowpath::SlowpathBench = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        let regressions = slowpath::regressions(&current, &baseline, REGRESSION_FACTOR);
        if regressions.is_empty() {
            println!("baseline check passed ({path}, tolerance {REGRESSION_FACTOR}x)");
        } else {
            eprintln!("\nbaseline check FAILED ({path}, tolerance {REGRESSION_FACTOR}x):");
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}
