//! Slow-path caching ablation. See `fg_bench::experiments::cache`.
fn main() {
    fg_bench::experiments::cache::print();
}
