//! Figure 5a — server overhead breakdown.
fn main() {
    fg_bench::experiments::fig5::servers(fg_cpu::CostModel::calibrated());
}
