//! Standalone fast-path benchmark runner.
//!
//! Prints the fast-path metric table, writes `BENCH_fastpath.json` to the
//! working directory, and — with `--check-baseline <path>` — exits non-zero
//! if any hardware-independent ratio regressed by more than 2x against the
//! checked-in baseline. CI runs this as the smoke-bench gate.

use fg_bench::experiments::fastpath;

const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check-baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fastpath_bench [--check-baseline <path>]");
                std::process::exit(2);
            }
        }
    }

    let current = fastpath::run();
    let mut t = fg_bench::table::Table::new(&["metric", "value"]);
    t.row(vec!["serial scan MiB/s".into(), fg_bench::table::fmt(current.scan_mib_per_sec, 1)]);
    t.row(vec![
        "parallel scan MiB/s".into(),
        fg_bench::table::fmt(current.parallel_scan_mib_per_sec, 1),
    ]);
    t.row(vec!["pairs checked / s".into(), fg_bench::table::fmt(current.pairs_per_sec, 0)]);
    t.row(vec!["edge lookup (CSR) ns".into(), fg_bench::table::fmt(current.edge_lookup_ns, 1)]);
    t.row(vec![
        "edge lookup (BTreeMap) ns".into(),
        fg_bench::table::fmt(current.edge_lookup_ns_btreemap, 1),
    ]);
    t.row(vec!["edge lookup speedup".into(), fg_bench::table::fmt(current.edge_lookup_speedup, 2)]);
    t.row(vec!["endpoint check ns".into(), fg_bench::table::fmt(current.endpoint_check_ns, 0)]);
    t.row(vec![
        "bytes/check incremental".into(),
        fg_bench::table::fmt(current.bytes_per_check_incremental, 1),
    ]);
    t.row(vec![
        "bytes/check cold rescan".into(),
        fg_bench::table::fmt(current.bytes_per_check_cold, 1),
    ]);
    t.row(vec!["bytes/check ratio".into(), fg_bench::table::fmt(current.bytes_per_check_ratio, 4)]);
    t.row(vec!["edge-cache hit rate".into(), fg_bench::table::fmt(current.edge_cache_hit_rate, 3)]);
    t.print("Fast-path micro-benchmarks");

    if let Err(e) = fastpath::write_json(&current, fastpath::JSON_PATH) {
        eprintln!("failed to write {}: {e}", fastpath::JSON_PATH);
        std::process::exit(1);
    }
    println!("\nwrote {}", fastpath::JSON_PATH);

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: fastpath::FastpathBench = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        let regressions = fastpath::regressions(&current, &baseline, REGRESSION_FACTOR);
        if regressions.is_empty() {
            println!("baseline check passed ({path}, tolerance {REGRESSION_FACTOR}x)");
        } else {
            eprintln!("\nbaseline check FAILED ({path}, tolerance {REGRESSION_FACTOR}x):");
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}
