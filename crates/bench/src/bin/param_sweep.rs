//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::params`.
fn main() {
    fg_bench::experiments::params::print();
}
