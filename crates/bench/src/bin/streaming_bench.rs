//! Standalone streaming-pipeline benchmark runner.
//!
//! Prints the streaming metric table, writes `BENCH_streaming.json` to the
//! working directory, and — with `--check-baseline <path>` — exits non-zero
//! if any gated metric regressed by more than 2x against the checked-in
//! baseline (or violates an absolute floor: parallel scan must not lose to
//! serial, the residue p50 must stay under 32 bytes, the drain path must
//! copy fewer than 4 bytes per drained KiB, and the dedicated consumer's
//! residue p99 must stay strictly below the poll-slot baseline). CI runs
//! this as part of the smoke-bench gate.

use fg_bench::experiments::streaming;

const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check-baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: streaming_bench [--check-baseline <path>]");
                std::process::exit(2);
            }
        }
    }

    let current = streaming::run();
    streaming::print_table(&current);

    if let Err(e) = streaming::write_json(&current, streaming::JSON_PATH) {
        eprintln!("failed to write {}: {e}", streaming::JSON_PATH);
        std::process::exit(1);
    }
    println!("\nwrote {}", streaming::JSON_PATH);

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: streaming::StreamingBench = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        let regressions = streaming::regressions(&current, &baseline, REGRESSION_FACTOR);
        if regressions.is_empty() {
            println!("baseline check passed ({path}, tolerance {REGRESSION_FACTOR}x)");
        } else {
            eprintln!("\nbaseline check FAILED ({path}, tolerance {REGRESSION_FACTOR}x):");
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}
