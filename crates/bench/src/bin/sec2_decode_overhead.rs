//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::sec2`.
fn main() {
    fg_bench::experiments::sec2::print();
}
