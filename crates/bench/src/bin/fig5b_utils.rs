//! Figure 5b — Linux utility overhead breakdown.
fn main() {
    fg_bench::experiments::fig5::utilities(fg_cpu::CostModel::calibrated());
}
