//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::table1`.
fn main() {
    fg_bench::experiments::table1::print();
}
