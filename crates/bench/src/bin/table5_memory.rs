//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::table5`.
fn main() {
    fg_bench::experiments::table5::print();
}
