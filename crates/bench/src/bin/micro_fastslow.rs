//! Regenerates the paper's corresponding table/figure. See `fg_bench::experiments::micro`.
fn main() {
    fg_bench::experiments::micro::print();
}
