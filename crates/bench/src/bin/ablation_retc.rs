//! RET-compression ablation. See `fg_bench::experiments::retc`.
fn main() {
    fg_bench::experiments::retc::print();
}
