//! Path-matching ablation. See `fg_bench::experiments::pathmatch`.
fn main() {
    fg_bench::experiments::pathmatch::print();
}
