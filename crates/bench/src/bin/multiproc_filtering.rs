//! §7.2.4 multi-process CR3-filter cost. See `fg_bench::experiments::multiproc`.
fn main() {
    fg_bench::experiments::multiproc::print();
}
