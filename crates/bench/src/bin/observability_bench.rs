//! Standalone observability-plane benchmark runner.
//!
//! Prints the observability metric table, writes `BENCH_observability.json`
//! to the working directory, and — with `--check-baseline <path>` — exits
//! non-zero if any gated metric regressed: attribution coverage under 95%
//! (default or streaming config), full-profiling wall-clock overhead above
//! the ceiling, an empty span ring, or an unhealthy benign run. CI runs
//! this as part of the smoke-bench gate.

use fg_bench::experiments::observability;

const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check-baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: observability_bench [--check-baseline <path>]");
                std::process::exit(2);
            }
        }
    }

    let current = observability::run();
    observability::print_table(&current);

    if let Err(e) = observability::write_json(&current, observability::JSON_PATH) {
        eprintln!("failed to write {}: {e}", observability::JSON_PATH);
        std::process::exit(1);
    }
    println!("\nwrote {}", observability::JSON_PATH);

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: observability::ObservabilityBench = serde_json::from_str(&text)
            .unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {path}: {e}");
                std::process::exit(2);
            });
        let regressions = observability::regressions(&current, &baseline, REGRESSION_FACTOR);
        if regressions.is_empty() {
            println!("baseline check passed ({path}, tolerance {REGRESSION_FACTOR}x)");
        } else {
            eprintln!("\nbaseline check FAILED ({path}, tolerance {REGRESSION_FACTOR}x):");
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}
