//! Back-compat regression tests: checked-in fixtures of older on-disk
//! shapes must keep parsing as the telemetry event and `BENCH_*.json`
//! schemas grow.
//!
//! The [`flowguard::CheckEvent`] wire format has grown across PRs — roughly
//! 12 words in the PR-3 era (fast-path counters only), 16 after the
//! checkpointed slow path landed (PR-4), and 18 once tier-0 probes were
//! split out (PR-7) — and every field is `#[serde(default)]` precisely so
//! that flight-recorder dumps and saved snapshots from older builds stay
//! loadable. The same policy covers the bench artifact schemas: columns
//! added later (`*_dist` histograms, observability metrics) default when
//! absent so checked-in baselines never need rewriting.

use fg_bench::experiments::{fastpath, slowpath, streaming};
use flowguard::{CheckEvent, CheckVerdict};

/// PR-3-era event: fast-path counters only, no slow-path or tier-0 words.
#[test]
fn pr3_era_check_event_parses_with_defaults() {
    let ev: CheckEvent =
        serde_json::from_str(include_str!("fixtures/checkevent_pr3.json")).unwrap();
    assert_eq!(ev.sysno, 59);
    assert_eq!(ev.verdict, CheckVerdict::FastClean);
    assert_eq!(ev.pairs_checked, 12);
    // Words that did not exist yet must default, not error.
    assert_eq!(ev.other_cycles, 0.0);
    assert_eq!(ev.slow_shards, 0);
    assert_eq!(ev.stitch_cycles, 0.0);
    assert_eq!(ev.tier0_hits, 0);
    assert!(!ev.streaming);
    assert_eq!(ev.total_cycles(), 512.0 + 96.0);
}

/// PR-4-era event: slow-path checkpoint/shard words present, tier-0 and
/// streaming words absent.
#[test]
fn pr4_era_check_event_parses_with_defaults() {
    let ev: CheckEvent =
        serde_json::from_str(include_str!("fixtures/checkevent_pr4.json")).unwrap();
    assert_eq!(ev.verdict, CheckVerdict::SlowClean);
    assert!(ev.checkpoint_hit);
    assert_eq!(ev.slow_shards, 4);
    assert_eq!(ev.slow_insns_decoded, 250_000);
    assert_eq!(ev.stitch_cycles, 0.0);
    assert_eq!(ev.tier0_misses, 0);
    assert_eq!(ev.frontier_lag, 0);
    assert_eq!(ev.drained_bytes, 0);
}

/// PR-7-era event: tier-0 words present, streaming words absent.
#[test]
fn pr7_era_check_event_parses_with_defaults() {
    let ev: CheckEvent =
        serde_json::from_str(include_str!("fixtures/checkevent_pr7.json")).unwrap();
    assert_eq!(ev.verdict, CheckVerdict::FastMalicious);
    assert_eq!(ev.tier0_hits, 5);
    assert!(!ev.streaming);
    assert_eq!(ev.drained_bytes, 0);
}

/// A current-era event survives a serialize → parse round trip, so dumps
/// written today become tomorrow's fixtures.
#[test]
fn current_check_event_round_trips() {
    let ev = CheckEvent {
        sysno: 59,
        verdict: CheckVerdict::SlowAttack,
        streaming: true,
        frontier_lag: 96,
        drained_bytes: 8192,
        tier0_misses: 1,
        ..Default::default()
    };
    let json = serde_json::to_string(&ev).unwrap();
    let back: CheckEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(back.verdict, CheckVerdict::SlowAttack);
    assert_eq!(back.frontier_lag, 96);
    assert_eq!(back.drained_bytes, 8192);
}

/// A pre-fleet-era `TelemetrySnapshot` dump: the fleet-scheduler words
/// (`sched_deferred_drains`, `sched_shed_inline`) do not exist yet and must
/// default to zero rather than fail the parse.
#[test]
fn pre_fleet_telemetry_snapshot_parses_with_defaults() {
    let text = include_str!("fixtures/telemetry_snapshot_pr9.json");
    assert!(!text.contains("sched_deferred_drains"), "fixture must predate the fleet words");
    let s: flowguard::TelemetrySnapshot = serde_json::from_str(text).unwrap();
    assert_eq!(s.checks, 24);
    assert!(s.stream_drains > 0, "a streaming-era dump with drains recorded");
    // Fleet-era words default.
    assert_eq!(s.sched_deferred_drains, 0);
    assert_eq!(s.sched_shed_inline, 0);
    // Zero-copy / consumer-thread era words (PR 10) default too.
    assert!(!text.contains("consumer_wakeups"), "fixture must predate the consumer words");
    assert_eq!(s.consumer_wakeups, 0);
    assert_eq!(s.consumer_drains, 0);
    assert_eq!(s.consumer_drained_bytes, 0);
    assert_eq!(s.stream_copied_bytes, 0);
    assert_eq!(s.stream_seam_carries, 0);
    assert_eq!(s.consumer_lag.count, 0);
    assert_eq!(s.copied_per_drained_kib(), 0.0);
    assert_eq!(s.consumer_utilization(), 0.0);
}

/// A `BENCH_fastpath.json` from before the `*_dist` histogram columns must
/// load with defaulted distributions.
#[test]
fn pr4_era_bench_fastpath_parses() {
    let b: fastpath::FastpathBench =
        serde_json::from_str(include_str!("fixtures/bench_fastpath_pr4.json")).unwrap();
    assert!((b.edge_cache_hit_rate - 0.93).abs() < 1e-12);
    assert_eq!(b.check_cycles_dist.count, 0);
    assert_eq!(b.scan_cycles_dist.count, 0);
    assert_eq!(b.bytes_per_check_dist.count, 0);
}

/// A `BENCH_slowpath.json` from before the distribution columns and the
/// engine checkpoint-hit counter.
#[test]
fn pr7_era_bench_slowpath_parses() {
    let b: slowpath::SlowpathBench =
        serde_json::from_str(include_str!("fixtures/bench_slowpath_pr7.json")).unwrap();
    assert_eq!(b.shards, 28);
    assert!((b.checkpoint_hit_rate - 0.92).abs() < 1e-12);
    assert_eq!(b.slow_decode_cycles_dist.count, 0);
    assert_eq!(b.engine_checkpoint_hits, 0);
}

/// A `BENCH_streaming.json` from before the residue distribution column.
#[test]
fn pr7_era_bench_streaming_parses() {
    let b: streaming::StreamingBench =
        serde_json::from_str(include_str!("fixtures/bench_streaming_pr7.json")).unwrap();
    assert_eq!(b.residue_bytes_per_check_p50, 16);
    assert_eq!(b.residue_bytes_dist.count, 0);
}

/// A `BENCH_streaming.json` from just before the zero-copy / consumer
/// columns: the residue distribution is present, the segmented-scan and
/// consumer-thread words are not and must default.
#[test]
fn pr9_era_bench_streaming_parses() {
    let text = include_str!("fixtures/bench_streaming_pr9.json");
    assert!(!text.contains("consumer_wakeups"), "fixture must predate the consumer columns");
    let b: streaming::StreamingBench = serde_json::from_str(text).unwrap();
    assert!(b.residue_bytes_dist.count > 0, "distribution column is present in this era");
    assert_eq!(b.segmented_scan_mib_per_sec, 0.0);
    assert_eq!(b.segmented_vs_vectorized, 0.0);
    assert_eq!(b.copied_bytes_per_drained_kib, 0.0);
    assert_eq!(b.consumer_wakeups, 0);
    assert_eq!(b.consumer_residue_p99, 0);
    assert_eq!(b.consumer_utilization, 0.0);
    // And it keeps working as the baseline side of the current gates.
    assert!(streaming::regressions(&b, &b, 2.0).is_empty());
}

/// Old checked-in baselines parse against the *current* regression gates —
/// the exact combination CI exercises after a schema change.
#[test]
fn old_baselines_feed_current_regression_gates() {
    let b: streaming::StreamingBench =
        serde_json::from_str(include_str!("fixtures/bench_streaming_pr7.json")).unwrap();
    // Comparing a shape-identical current run against the old baseline must
    // produce no spurious regressions.
    assert!(streaming::regressions(&b, &b, 2.0).is_empty());
}
