//! Criterion benches for the training pipeline: mutation throughput,
//! emulated executions per second, and corpus replay (credit labeling).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mutations(c: &mut Criterion) {
    let input = vec![0x41u8; 64];
    let mut g = c.benchmark_group("mutation");
    g.throughput(Throughput::Elements(1));
    g.bench_function("havoc_64b", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| fg_fuzz::mutate::havoc(&mut rng, &input, 256));
    });
    g.bench_function("deterministic_16b", |b| {
        b.iter(|| fg_fuzz::mutate::deterministic(&input[..16]));
    });
    g.finish();
}

fn bench_emulated_exec(c: &mut Criterion) {
    let w = fg_workloads::nginx_patched();
    let input = fg_workloads::request(1, b"benchmark-payload");
    c.bench_function("emulated_exec_with_coverage", |b| {
        b.iter(|| {
            let mut m = fg_cpu::Machine::new(&w.image, 0xf000);
            m.enable_coverage();
            let mut k = fg_kernel::Kernel::with_input(&input);
            m.run(&mut k, 2_000_000)
        });
    });
}

fn bench_training_replay(c: &mut Criterion) {
    let w = fg_workloads::vsftpd();
    let ocfg = fg_cfg::OCfg::build(&w.image);
    let corpus: Vec<Vec<u8>> = (0..4u8).map(|i| fg_workloads::request(i, b"train")).collect();
    c.bench_function("train_replay_4_inputs", |b| {
        b.iter(|| {
            let mut itc = fg_cfg::ItcCfg::build(&ocfg);
            fg_fuzz::train(&mut itc, &w.image, &corpus, fg_fuzz::TrainConfig::default())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_mutations, bench_emulated_exec, bench_training_replay
}
criterion_main!(benches);
