//! Criterion benches for the IPT codec: trace-side encoding, packet-level
//! scanning (the fast-path primitive), and instruction-flow decoding (the
//! slow path) — the throughput asymmetry behind the paper's design.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fg_cpu::{IptUnit, Machine, TraceUnit};
use fg_ipt::encode::PacketEncoder;
use fg_ipt::topa::Topa;

/// A realistic trace: the tar workload under IPT.
fn workload_trace() -> (fg_workloads::Workload, Vec<u8>) {
    let w = fg_workloads::tar();
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, 50_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
    (w, bytes)
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("tnt_tip_mix", |b| {
        b.iter(|| {
            let mut enc = PacketEncoder::new(Vec::with_capacity(64 * 1024));
            for i in 0..10_000u64 {
                if i % 5 == 0 {
                    enc.tip(0x40_0000 + (i % 97) * 8);
                } else {
                    enc.tnt_bit(i % 3 == 0);
                }
            }
            enc.into_sink()
        });
    });
    g.finish();
}

fn bench_scan_vs_flow_decode(c: &mut Criterion) {
    let (w, bytes) = workload_trace();
    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("packet_scan", |b| b.iter(|| fg_ipt::fast::scan(&bytes).expect("scan")));
    g.bench_function("instruction_flow", |b| {
        b.iter(|| fg_ipt::flow::FlowDecoder::new(&w.image).decode(&bytes).expect("decodes"));
    });
    g.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let (_, bytes) = workload_trace();
    let mut g = c.benchmark_group("parallel_scan");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serial", |b| b.iter(|| fg_ipt::fast::scan(&bytes).expect("scan")));
    g.bench_function("psb_parallel", |b| {
        b.iter(|| flowguard::scan_parallel(&bytes).expect("scan"));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode, bench_scan_vs_flow_decode, bench_parallel_scan
}
criterion_main!(benches);
