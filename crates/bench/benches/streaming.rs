//! Criterion benches for the streaming pipeline: scalar vs. vectorized vs.
//! chunked-parallel scan throughput, the frontier compare of a fully
//! drained consumer, and a chunked streaming drain replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fg_cpu::{IptUnit, Machine, TraceUnit};
use fg_ipt::topa::Topa;
use fg_ipt::{fast, StreamConsumer};
use flowguard::scan_parallel;

fn bench_trace() -> Vec<u8> {
    let w = fg_workloads::nginx_patched();
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, 100_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    m.trace.as_ipt().expect("ipt").trace_bytes()
}

fn bench_scan_variants(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("streaming_scan");
    g.throughput(Throughput::Bytes(trace.len() as u64));
    g.bench_function("scalar", |b| b.iter(|| fast::scan(&trace).expect("scan")));
    g.bench_function("vectorized", |b| b.iter(|| fast::scan_vectorized(&trace).expect("scan")));
    g.bench_function("parallel", |b| b.iter(|| scan_parallel(&trace).expect("scan")));
    g.finish();
}

fn bench_streaming_drain(c: &mut Criterion) {
    let trace = bench_trace();
    let total = trace.len() as u64;
    // Replay the producer in 4 KiB appends, draining after each — the
    // shape the background consumer sees between trace-poll slots.
    let mut g = c.benchmark_group("streaming_drain");
    g.throughput(Throughput::Bytes(trace.len() as u64));
    g.bench_function("chunked_4k", |b| {
        b.iter(|| {
            let mut stream = StreamConsumer::new();
            let mut end = 0usize;
            while end < trace.len() {
                end = (end + 4096).min(trace.len());
                stream.drain(&trace[..end], end as u64).expect("drain");
            }
            stream.scan().tip_count()
        });
    });
    g.finish();

    // The degenerate fully-drained endpoint check: one frontier compare.
    let mut stream = StreamConsumer::new();
    stream.drain(&trace, total).expect("drain");
    assert_eq!(stream.residue(total), 0);
    c.bench_function("frontier_compare", |b| {
        b.iter(|| stream.residue(std::hint::black_box(total)));
    });
}

criterion_group! {
    name = benches;
    // FG_BENCH_QUICK=1 drops the sample count for CI smoke runs.
    config = Criterion::default().sample_size(
        if std::env::var_os("FG_BENCH_QUICK").is_some() { 3 } else { 15 },
    );
    targets = bench_scan_variants, bench_streaming_drain
}
criterion_main!(benches);
