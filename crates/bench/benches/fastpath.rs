//! Criterion benches for the incremental fast path: cold vs. parallel vs.
//! checkpointed scanning, CSR vs. BTreeMap edge lookup, and the windowed
//! check with a persistent scratch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fg_cfg::{EdgeIdx, ItcCfg, OCfg};
use fg_cpu::{CostModel, IptUnit, Machine, TraceUnit};
use fg_ipt::topa::Topa;
use fg_ipt::{fast, IncrementalScanner};
use flowguard::{fastpath, scan_parallel, CheckScratch, FlowGuardConfig};
use std::collections::{BTreeMap, HashSet};

struct Setup {
    w: fg_workloads::Workload,
    itc: ItcCfg,
    trace: Vec<u8>,
    scan: fast::FastScan,
}

fn setup() -> Setup {
    let w = fg_workloads::nginx_patched();
    let ocfg = OCfg::build(&w.image);
    let mut itc = ItcCfg::build(&ocfg);
    fg_fuzz::train(
        &mut itc,
        &w.image,
        std::slice::from_ref(&w.default_input),
        fg_fuzz::TrainConfig::default(),
    );
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, 100_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let trace = m.trace.as_ipt().expect("ipt").trace_bytes();
    let scan = fast::scan(&trace).expect("scan");
    Setup { w, itc, trace, scan }
}

fn bench_scan(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("scan");
    g.throughput(Throughput::Bytes(s.trace.len() as u64));
    g.bench_function("cold_full", |b| b.iter(|| fast::scan(&s.trace).expect("scan")));
    g.bench_function("parallel", |b| b.iter(|| scan_parallel(&s.trace).expect("scan")));
    // Incremental replay: feed the trace in 4 KiB appends, as the engine
    // sees it between endpoint checks.
    g.bench_function("incremental_4k_appends", |b| {
        b.iter(|| {
            let mut inc = IncrementalScanner::new();
            let mut end = 0usize;
            while end < s.trace.len() {
                end = (end + 4096).min(s.trace.len());
                inc.advance(&s.trace[..end], end as u64, end).expect("advance");
            }
            inc.scan().tip_count()
        });
    });
    g.finish();
}

fn bench_edge_lookup(c: &mut Criterion) {
    let s = setup();
    let pairs: Vec<(u64, u64)> =
        s.scan.tip_ips().windows(2).map(|w| (w[0], w[1])).take(1024).collect();
    let map: BTreeMap<(u64, u64), EdgeIdx> =
        s.itc.iter_edges().map(|(f, t, e)| ((f, t), e)).collect();
    let mut g = c.benchmark_group("edge_lookup_1k");
    g.bench_function("csr", |b| {
        b.iter(|| pairs.iter().filter(|&&(f, t)| s.itc.edge(f, t).is_some()).count());
    });
    g.bench_function("btreemap", |b| {
        b.iter(|| pairs.iter().filter(|&&(f, t)| map.contains_key(&(f, t))).count());
    });
    g.finish();
}

fn bench_check(c: &mut Criterion) {
    let s = setup();
    let cfg = FlowGuardConfig::default();
    let cache = HashSet::new();
    let cost = CostModel::calibrated();
    let mut scratch = CheckScratch::new(&s.w.image);
    c.bench_function("fastpath_check_scratch", |b| {
        b.iter(|| {
            fastpath::check_windowed(
                &s.itc,
                &cache,
                &mut scratch,
                &s.scan,
                &cfg,
                cost.edge_check_cycles,
                false,
                None,
            )
        });
    });
}

criterion_group! {
    name = benches;
    // FG_BENCH_QUICK=1 drops the sample count for CI smoke runs.
    config = Criterion::default().sample_size(
        if std::env::var_os("FG_BENCH_QUICK").is_some() { 3 } else { 15 },
    );
    targets = bench_scan, bench_edge_lookup, bench_check
}
criterion_main!(benches);
