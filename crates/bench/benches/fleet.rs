//! Criterion benches for fleet-scale enforcement: supervisor throughput at
//! 1 and 8 concurrent processes, and the artifact-cache lookup that lets
//! every instance of a binary share one deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use flowguard::fleet::ArtifactCache;
use flowguard::{FleetConfig, FleetSupervisor};

fn fleet_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::default();
    cfg.flowguard.streaming = true;
    cfg
}

fn run_fleet(n: usize) {
    let w = fg_workloads::nginx_patched();
    let mut fleet = FleetSupervisor::new(fleet_cfg());
    for pid in 0..n {
        let input = fg_workloads::load_input(4, pid as u64);
        fleet
            .spawn("nginx", &w.image, std::slice::from_ref(&w.default_input), &input)
            .expect("benign image admitted");
    }
    fleet.run();
    assert!(fleet.members().iter().all(|m| !m.violated()));
}

fn bench_fleet_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_run");
    g.bench_function("solo", |b| b.iter(|| run_fleet(1)));
    g.bench_function("fleet_8", |b| b.iter(|| run_fleet(8)));
    g.finish();
}

fn bench_artifact_cache(c: &mut Criterion) {
    let w = fg_workloads::nginx_patched();
    let corpus = vec![w.default_input.clone()];
    let mut cache = ArtifactCache::new();
    cache.deploy(&w.image, &corpus).expect("admitted");
    // The steady state of a fleet spawn: hash the image, hit the cache.
    c.bench_function("artifact_cache_hit", |b| {
        b.iter(|| cache.deploy(&w.image, &corpus).expect("admitted"));
    });
}

criterion_group! {
    name = benches;
    // FG_BENCH_QUICK=1 drops the sample count for CI smoke runs.
    config = Criterion::default().sample_size(
        if std::env::var_os("FG_BENCH_QUICK").is_some() { 10 } else { 15 },
    );
    targets = bench_fleet_run, bench_artifact_cache
}
criterion_main!(benches);
