//! Criterion benches for the slow path: serial vs. PSB-sharded flow decode,
//! cold vs. checkpointed incremental checking, and the full policy check.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fg_bench::experiments::slowpath::{decode_serial_ref, decode_sharded_pool};
use fg_cpu::{CostModel, IptUnit, Machine, TraceUnit};
use fg_ipt::topa::Topa;
use flowguard::slowpath::{self, SlowScratch};
use flowguard::WorkerPool;

struct Setup {
    image: fg_isa::image::Image,
    ocfg: fg_cfg::OCfg,
    trace: Vec<u8>,
}

fn setup() -> Setup {
    let w = fg_workloads::nginx_patched();
    let ocfg = fg_cfg::OCfg::build(&w.image);
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, 100_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let trace = m.trace.as_ipt().expect("ipt").trace_bytes();
    Setup { image: w.image.clone(), ocfg, trace }
}

fn bench_decode(c: &mut Criterion) {
    let s = setup();
    let pool = WorkerPool::with_size(4);
    let mut g = c.benchmark_group("slow_decode");
    g.throughput(Throughput::Bytes(s.trace.len() as u64));
    g.bench_function("serial", |b| b.iter(|| decode_serial_ref(&s.image, &s.trace)));
    g.bench_function("sharded_pool4", |b| {
        b.iter(|| decode_sharded_pool(&s.image, &s.trace, &pool));
    });
    g.finish();
}

fn bench_check(c: &mut Criterion) {
    let s = setup();
    let cost = CostModel::calibrated();
    let pool = WorkerPool::with_size(4);
    let mut g = c.benchmark_group("slow_check");
    g.bench_function("cold_serial", |b| {
        b.iter(|| slowpath::check(&s.image, &s.ocfg, &s.trace, &cost));
    });
    g.bench_function("cold_sharded_pool4", |b| {
        b.iter(|| {
            let mut scratch = SlowScratch::new();
            slowpath::check_incremental(
                &s.image,
                &s.ocfg,
                &s.trace,
                0,
                &cost,
                Some(&pool),
                &mut scratch,
            )
        });
    });
    // Checkpointed replay: the trace fed as 8 growing windows, one warm
    // scratch — the engine's overlapping-tail-window pattern.
    let psbs = fg_ipt::PacketParser::psb_offsets(&s.trace);
    let step = (psbs.len() / 8).max(1);
    let mut cuts: Vec<usize> = (1..8).map(|i| psbs[(i * step).min(psbs.len() - 1)]).collect();
    cuts.push(s.trace.len());
    g.bench_function("warm_8_windows", |b| {
        b.iter(|| {
            let mut scratch = SlowScratch::new();
            let mut decoded = 0u64;
            for &cut in &cuts {
                let r = slowpath::check_incremental(
                    &s.image,
                    &s.ocfg,
                    &s.trace[..cut],
                    0,
                    &cost,
                    None,
                    &mut scratch,
                );
                decoded += r.insns_decoded;
            }
            decoded
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // FG_BENCH_QUICK=1 drops the sample count for CI smoke runs.
    config = Criterion::default().sample_size(
        if std::env::var_os("FG_BENCH_QUICK").is_some() { 10 } else { 15 },
    );
    targets = bench_decode, bench_check
}
criterion_main!(benches);
