//! Criterion benches for FlowGuard's runtime checking: ITC-CFG edge lookup,
//! the fast-path window check, the slow-path full analysis, and the offline
//! construction costs (O-CFG, ITC-CFG, training).

use criterion::{criterion_group, criterion_main, Criterion};
use fg_cfg::{ItcCfg, OCfg};
use fg_cpu::{CostModel, IptUnit, Machine, TraceUnit};
use fg_ipt::topa::Topa;
use flowguard::FlowGuardConfig;
use std::collections::HashSet;

struct Setup {
    w: fg_workloads::Workload,
    ocfg: OCfg,
    itc: ItcCfg,
    trace: Vec<u8>,
    scan: fg_ipt::fast::FastScan,
}

fn setup() -> Setup {
    let w = fg_workloads::nginx_patched();
    let ocfg = OCfg::build(&w.image);
    let mut itc = ItcCfg::build(&ocfg);
    fg_fuzz::train(
        &mut itc,
        &w.image,
        std::slice::from_ref(&w.default_input),
        fg_fuzz::TrainConfig::default(),
    );
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    m.run(&mut k, 100_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let trace = m.trace.as_ipt().expect("ipt").trace_bytes();
    let scan = fg_ipt::fast::scan(&trace).expect("scan");
    Setup { w, ocfg, itc, trace, scan }
}

fn bench_edge_lookup(c: &mut Criterion) {
    let s = setup();
    let pairs: Vec<(u64, u64)> =
        s.scan.tip_ips().windows(2).map(|w| (w[0], w[1])).take(1024).collect();
    c.bench_function("itc_edge_lookup_1k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(f, t) in &pairs {
                if s.itc.edge(f, t).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_paths(c: &mut Criterion) {
    let s = setup();
    let cfg = FlowGuardConfig::default();
    let cache = HashSet::new();
    let cost = CostModel::calibrated();
    c.bench_function("fast_path_window", |b| {
        b.iter(|| {
            flowguard::fastpath::check(
                &s.itc,
                &cache,
                &s.w.image,
                &s.scan,
                &cfg,
                cost.edge_check_cycles,
            )
        });
    });
    c.bench_function("slow_path_full", |b| {
        b.iter(|| flowguard::slowpath::check(&s.w.image, &s.ocfg, &s.trace, &cost));
    });
}

fn bench_offline(c: &mut Criterion) {
    let w = fg_workloads::vsftpd();
    c.bench_function("ocfg_build", |b| b.iter(|| OCfg::build(&w.image)));
    let ocfg = OCfg::build(&w.image);
    c.bench_function("itc_build", |b| b.iter(|| ItcCfg::build(&ocfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_edge_lookup, bench_paths, bench_offline
}
criterion_main!(benches);
