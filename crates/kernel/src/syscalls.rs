//! Syscall numbers and the security-sensitive set.
//!
//! FlowGuard "uses critical system calls as endpoints for CFI checking" and
//! "selects the same sets of syscalls as PathArmor since they represent the
//! major threats" (§5.2): `execve`, `mmap`, `mprotect`, plus `write` and
//! `sigreturn` (the syscalls at which the paper's ROP and SROP attacks are
//! caught, §7.1.2).

use serde::{Deserialize, Serialize};

/// Syscall numbers of the simulated kernel ABI (number in `r0`, arguments
/// in `r1`–`r5`, result in `r0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u64)]
pub enum Sysno {
    /// `exit(code)` — terminate the process.
    Exit = 0,
    /// `read(fd, buf, len) → n` — fd 0 is the de-socketed input stream.
    Read = 1,
    /// `write(fd, buf, len) → n` — output is collected by the kernel.
    Write = 2,
    /// `open(path_ptr, path_len) → fd` on the in-memory filesystem.
    Open = 3,
    /// `close(fd)`.
    Close = 4,
    /// `mmap(hint, len) → va` — map anonymous memory.
    Mmap = 5,
    /// `mprotect(va, len, prot)`.
    Mprotect = 6,
    /// `execve(path_ptr, path_len)`.
    Execve = 7,
    /// `sigreturn()` — restore a signal frame from the stack.
    Sigreturn = 8,
    /// `gettimeofday() → ticks` (the VDSO-accelerated call of §4.1).
    Gettimeofday = 9,
    /// `getpid() → pid`.
    Getpid = 10,
}

impl Sysno {
    /// Decodes a syscall number.
    pub fn from_u64(nr: u64) -> Option<Sysno> {
        Some(match nr {
            0 => Sysno::Exit,
            1 => Sysno::Read,
            2 => Sysno::Write,
            3 => Sysno::Open,
            4 => Sysno::Close,
            5 => Sysno::Mmap,
            6 => Sysno::Mprotect,
            7 => Sysno::Execve,
            8 => Sysno::Sigreturn,
            9 => Sysno::Gettimeofday,
            10 => Sysno::Getpid,
            _ => return None,
        })
    }

    /// The syscall's name.
    pub fn name(self) -> &'static str {
        match self {
            Sysno::Exit => "exit",
            Sysno::Read => "read",
            Sysno::Write => "write",
            Sysno::Open => "open",
            Sysno::Close => "close",
            Sysno::Mmap => "mmap",
            Sysno::Mprotect => "mprotect",
            Sysno::Execve => "execve",
            Sysno::Sigreturn => "sigreturn",
            Sysno::Gettimeofday => "gettimeofday",
            Sysno::Getpid => "getpid",
        }
    }
}

/// The set of syscalls treated as security-sensitive endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensitiveSet {
    numbers: Vec<Sysno>,
}

impl SensitiveSet {
    /// The PathArmor-like default: `execve`, `mmap`, `mprotect`, `write`,
    /// `sigreturn`.
    pub fn patharmor_default() -> SensitiveSet {
        SensitiveSet {
            numbers: vec![
                Sysno::Execve,
                Sysno::Mmap,
                Sysno::Mprotect,
                Sysno::Write,
                Sysno::Sigreturn,
            ],
        }
    }

    /// A user-specified set ("FlowGuard provides an interface for users to
    /// specify their own endpoints", §7.1.2).
    pub fn custom(numbers: Vec<Sysno>) -> SensitiveSet {
        SensitiveSet { numbers }
    }

    /// Whether `nr` is sensitive.
    pub fn contains(&self, nr: Sysno) -> bool {
        self.numbers.contains(&nr)
    }

    /// The contained syscalls.
    pub fn iter(&self) -> impl Iterator<Item = Sysno> + '_ {
        self.numbers.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip() {
        for nr in 0..=10u64 {
            let s = Sysno::from_u64(nr).unwrap();
            assert_eq!(s as u64, nr);
            assert!(!s.name().is_empty());
        }
        assert_eq!(Sysno::from_u64(99), None);
    }

    #[test]
    fn default_sensitive_set_matches_patharmor() {
        let s = SensitiveSet::patharmor_default();
        assert!(s.contains(Sysno::Execve));
        assert!(s.contains(Sysno::Mprotect));
        assert!(s.contains(Sysno::Mmap));
        assert!(s.contains(Sysno::Write), "traditional ROP caught at write (§7.1.2)");
        assert!(s.contains(Sysno::Sigreturn), "SROP caught at sigreturn (§7.1.2)");
        assert!(!s.contains(Sysno::Read));
        assert!(!s.contains(Sysno::Gettimeofday));
    }

    #[test]
    fn custom_set() {
        let s = SensitiveSet::custom(vec![Sysno::Read]);
        assert!(s.contains(Sysno::Read));
        assert!(!s.contains(Sysno::Write));
        assert_eq!(s.iter().count(), 1);
    }
}
