//! The simulated kernel: syscall dispatch, in-memory filesystem, signal
//! frames, and the interception hook the FlowGuard kernel module installs.
//!
//! "FlowGuard chooses to intercept these security-sensitive syscalls by
//! temporarily modifying the syscall table and installing one alternative
//! syscall handler for each of them" (§5.2) — modelled by the
//! [`SyscallInterceptor`] installed into the [`Kernel`]: the dispatch path
//! consults it before executing a sensitive syscall, and a
//! [`InterceptVerdict::Kill`] delivers SIGKILL to the process.

use crate::syscalls::{SensitiveSet, Sysno};
use fg_cpu::machine::{SysOutcome, SyscallCtx, SyscallHandler};
use fg_trace::Histogram;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// SIGKILL, delivered on CFI violation.
pub const SIGKILL: u32 = 9;
/// SIGSYS, delivered on invalid syscall numbers.
pub const SIGSYS: u32 = 31;

/// Verdict of the FlowGuard kernel module for an intercepted syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterceptVerdict {
    /// Forward to the original handler.
    Allow,
    /// Kill the process with the given signal and report the violation.
    Kill(u32),
}

/// The interface of the runtime-protection kernel module (implemented by
/// `flowguard`'s engine).
pub trait SyscallInterceptor {
    /// Whether this process (by CR3) is protected.
    fn protects(&self, cr3: u64) -> bool;

    /// Whether the syscall is a configured endpoint.
    fn is_sensitive(&self, nr: Sysno) -> bool;

    /// Runs the flow check at an endpoint. `ctx` exposes the trace unit so
    /// the checker can read the ToPA buffer.
    fn check(&mut self, nr: Sysno, ctx: &mut SyscallCtx<'_>) -> InterceptVerdict;

    /// Runs at a trace-buffer PMI (the paper's worst-case fallback endpoint,
    /// §7.1.2). Default: allow.
    fn on_pmi(&mut self, _ctx: &mut SyscallCtx<'_>) -> InterceptVerdict {
        InterceptVerdict::Allow
    }

    /// Runs at the machine's periodic trace-poll slot (see
    /// [`fg_cpu::machine::TRACE_POLL_PERIOD`]). The streaming consumer
    /// drains the ToPA residue here, concurrently with execution; it cannot
    /// render a verdict. Default: nothing.
    fn on_trace_poll(&mut self, _ctx: &mut SyscallCtx<'_>) {}
}

/// Number of u64 words in a signal frame: `pc` plus 16 registers.
pub const SIGFRAME_WORDS: usize = 17;

/// The simulated kernel state for one process.
pub struct Kernel {
    /// De-socketed input stream (fd 0) — the preeny/desock substitution:
    /// network programs read their requests from here.
    pub input: VecDeque<u8>,
    /// Collected output (fd 1 and any file writes).
    pub output: Vec<u8>,
    /// In-memory filesystem.
    pub files: HashMap<String, Vec<u8>>,
    /// Monotone clock returned by `gettimeofday`.
    pub time: u64,
    /// Process id returned by `getpid`.
    pub pid: u64,
    /// Log of `(syscall, pc-after-syscall)` pairs, for tests and evaluation.
    pub syscall_log: Vec<(Sysno, u64)>,
    /// Log of `execve` paths (attack-goal detection in the evaluation).
    pub execve_log: Vec<String>,
    /// Next anonymous-mapping address for `mmap`.
    next_mmap: u64,
    /// The installed FlowGuard kernel module, if any.
    interceptor: Option<Box<dyn SyscallInterceptor>>,
    /// Wall-clock latency probe over interceptor invocations (nanoseconds
    /// per check), when telemetry is attached.
    intercept_probe: Option<Arc<Histogram>>,
    /// Violations reported (endpoint syscall names).
    pub violations: Vec<&'static str>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("pid", &self.pid)
            .field("input_len", &self.input.len())
            .field("output_len", &self.output.len())
            .field("syscalls", &self.syscall_log.len())
            .field("protected", &self.interceptor.is_some())
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Kernel {
        Kernel::new()
    }
}

impl Kernel {
    /// Creates a kernel with empty input.
    pub fn new() -> Kernel {
        Kernel {
            input: VecDeque::new(),
            output: Vec::new(),
            files: HashMap::new(),
            time: 0,
            pid: 1,
            syscall_log: Vec::new(),
            execve_log: Vec::new(),
            next_mmap: 0x5000_0000,
            interceptor: None,
            intercept_probe: None,
            violations: Vec::new(),
        }
    }

    /// Creates a kernel whose fd 0 serves `input`.
    pub fn with_input(input: &[u8]) -> Kernel {
        let mut k = Kernel::new();
        k.input.extend(input);
        k
    }

    /// Installs the FlowGuard kernel module ("enabled by a user-level
    /// software", §7).
    pub fn install_interceptor(&mut self, module: Box<dyn SyscallInterceptor>) {
        self.interceptor = Some(module);
    }

    /// Removes the kernel module, returning it (to read statistics).
    pub fn take_interceptor(&mut self) -> Option<Box<dyn SyscallInterceptor>> {
        self.interceptor.take()
    }

    /// Attaches a latency probe: the wall-clock nanoseconds each
    /// interceptor invocation takes (syscall endpoints and PMIs alike) are
    /// recorded into `hist`. Unset, the dispatch path takes no timestamps.
    pub fn set_intercept_probe(&mut self, hist: Arc<Histogram>) {
        self.intercept_probe = Some(hist);
    }

    /// Runs one interceptor invocation under the optional latency probe.
    fn timed_check(
        probe: &Option<Arc<Histogram>>,
        invoke: impl FnOnce() -> InterceptVerdict,
    ) -> InterceptVerdict {
        match probe {
            Some(p) => {
                let t0 = Instant::now();
                let verdict = invoke();
                p.record(t0.elapsed().as_nanos() as u64);
                verdict
            }
            None => invoke(),
        }
    }

    /// Whether any CFI violation was reported.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    fn read_str(ctx: &SyscallCtx<'_>, ptr: u64, len: u64) -> Option<String> {
        let bytes = ctx.mem.read_bytes(ptr, len as usize).ok()?;
        String::from_utf8(bytes).ok()
    }
}

impl SyscallHandler for Kernel {
    fn pmi(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome {
        // Acknowledge the interrupt, then give the kernel module a chance to
        // run its PMI-endpoint check.
        if let Some(u) = ctx.trace.as_ipt_mut() {
            u.topa_mut().take_pmi();
        }
        if let Some(mut module) = self.interceptor.take() {
            let verdict = if module.protects(ctx.cr3) {
                Kernel::timed_check(&self.intercept_probe, || module.on_pmi(ctx))
            } else {
                InterceptVerdict::Allow
            };
            self.interceptor = Some(module);
            if let InterceptVerdict::Kill(sig) = verdict {
                self.violations.push("pmi");
                return SysOutcome::Kill(sig);
            }
        }
        SysOutcome::Continue
    }

    fn trace_poll(&mut self, ctx: &mut SyscallCtx<'_>) {
        // Not a check: no verdict, no violation accounting, and (unlike
        // syscall endpoints) no latency probe — this models the background
        // consumer's slice of CPU, not interception work.
        if let Some(mut module) = self.interceptor.take() {
            if module.protects(ctx.cr3) {
                module.on_trace_poll(ctx);
            }
            self.interceptor = Some(module);
        }
    }

    fn syscall(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome {
        let nr_raw = ctx.cpu.regs[0];
        let Some(nr) = Sysno::from_u64(nr_raw) else {
            return SysOutcome::Kill(SIGSYS);
        };
        self.syscall_log.push((nr, ctx.cpu.pc));

        // --- FlowGuard interception (§5.2) ---------------------------------
        if let Some(mut module) = self.interceptor.take() {
            let verdict = if module.protects(ctx.cr3) && module.is_sensitive(nr) {
                Kernel::timed_check(&self.intercept_probe, || module.check(nr, ctx))
            } else {
                InterceptVerdict::Allow
            };
            self.interceptor = Some(module);
            if let InterceptVerdict::Kill(sig) = verdict {
                self.violations.push(nr.name());
                return SysOutcome::Kill(sig);
            }
        }

        // --- original handlers --------------------------------------------
        let (a1, a2, a3) = (ctx.cpu.regs[1], ctx.cpu.regs[2], ctx.cpu.regs[3]);
        match nr {
            Sysno::Exit => return SysOutcome::Exit(a1 as i64),
            Sysno::Read => {
                let mut n = 0u64;
                for i in 0..a3 {
                    let Some(b) = self.input.pop_front() else { break };
                    if ctx.mem.write_u8(a2 + i, b).is_err() {
                        break;
                    }
                    n += 1;
                }
                ctx.cpu.regs[0] = n;
            }
            Sysno::Write => {
                match ctx.mem.read_bytes(a2, a3 as usize) {
                    Ok(bytes) => {
                        self.output.extend_from_slice(&bytes);
                        ctx.cpu.regs[0] = a3;
                    }
                    Err(_) => ctx.cpu.regs[0] = u64::MAX, // -EFAULT
                }
            }
            Sysno::Open => {
                let fd = match Kernel::read_str(ctx, a1, a2) {
                    Some(path) => {
                        self.files.entry(path).or_default();
                        3 + self.files.len() as u64
                    }
                    None => u64::MAX,
                };
                ctx.cpu.regs[0] = fd;
            }
            Sysno::Close | Sysno::Mprotect => ctx.cpu.regs[0] = 0,
            Sysno::Mmap => {
                let len = (a2.max(1) + 0xfff) & !0xfff;
                let va = self.next_mmap;
                self.next_mmap += len + 0x1000;
                ctx.mem.map_anon(va, len as usize);
                ctx.cpu.regs[0] = va;
            }
            Sysno::Execve => {
                if let Some(path) = Kernel::read_str(ctx, a1, a2) {
                    self.execve_log.push(path);
                }
                ctx.cpu.regs[0] = 0;
            }
            Sysno::Sigreturn => {
                // Restore the signal frame at sp: [pc, r0..r15].
                let sp = ctx.cpu.sp();
                let mut words = [0u64; SIGFRAME_WORDS];
                for (i, w) in words.iter_mut().enumerate() {
                    match ctx.mem.read_u64(sp + 8 * i as u64) {
                        Ok(v) => *w = v,
                        Err(_) => return SysOutcome::Kill(SIGKILL),
                    }
                }
                ctx.cpu.pc = words[0];
                ctx.cpu.regs.copy_from_slice(&words[1..]);
            }
            Sysno::Gettimeofday => {
                self.time += 1;
                ctx.cpu.regs[0] = self.time;
            }
            Sysno::Getpid => ctx.cpu.regs[0] = self.pid,
        }
        SysOutcome::Continue
    }
}

/// A convenience interceptor that kills on every sensitive syscall —
/// useful for tests of the interception plumbing.
#[derive(Debug)]
pub struct DenyAll {
    /// The endpoint set to deny.
    pub sensitive: SensitiveSet,
    /// The protected CR3.
    pub cr3: u64,
}

impl SyscallInterceptor for DenyAll {
    fn protects(&self, cr3: u64) -> bool {
        cr3 == self.cr3
    }

    fn is_sensitive(&self, nr: Sysno) -> bool {
        self.sensitive.contains(nr)
    }

    fn check(&mut self, _nr: Sysno, _ctx: &mut SyscallCtx<'_>) -> InterceptVerdict {
        InterceptVerdict::Kill(SIGKILL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cpu::machine::{Machine, StopReason};
    use fg_cpu::mem::HEAP_BASE;
    use fg_isa::asm::Asm;
    use fg_isa::image::{Image, Linker};
    use fg_isa::insn::regs::*;

    fn build(f: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        f(&mut a);
        Linker::new(a.finish().unwrap()).link().unwrap()
    }

    #[test]
    fn read_write_roundtrip() {
        // read 5 bytes from stdin to heap, write them back out.
        let img = build(|a| {
            a.movi(R0, Sysno::Read as i32);
            a.movi(R1, 0);
            a.movi(R2, HEAP_BASE as i32);
            a.movi(R3, 5);
            a.syscall();
            a.movi(R0, Sysno::Write as i32);
            a.movi(R1, 1);
            a.syscall();
            a.movi(R0, 0);
            a.movi(R1, 0);
            a.syscall();
        });
        let mut m = Machine::new(&img, 0x1000);
        let mut k = Kernel::with_input(b"hello");
        assert_eq!(m.run(&mut k, 1000), StopReason::Exited(0));
        assert_eq!(k.output, b"hello");
        assert_eq!(k.syscall_log.len(), 3);
    }

    #[test]
    fn read_returns_count_and_eof() {
        let img = build(|a| {
            a.movi(R0, Sysno::Read as i32);
            a.movi(R1, 0);
            a.movi(R2, HEAP_BASE as i32);
            a.movi(R3, 100);
            a.syscall();
            a.mov(R10, R0); // first read: 3
            a.movi(R0, Sysno::Read as i32);
            a.movi(R3, 100);
            a.syscall();
            a.mov(R11, R0); // second read: 0 (EOF)
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        let mut k = Kernel::with_input(b"abc");
        assert_eq!(m.run(&mut k, 1000), StopReason::Halted);
        assert_eq!(m.cpu.regs[10], 3);
        assert_eq!(m.cpu.regs[11], 0);
    }

    #[test]
    fn mmap_maps_usable_memory() {
        let img = build(|a| {
            a.movi(R0, Sysno::Mmap as i32);
            a.movi(R1, 0);
            a.movi(R2, 4096);
            a.syscall();
            a.mov(R9, R0);
            a.movi(R5, 77);
            a.st(R5, R9, 0); // store into the new mapping
            a.ld(R6, R9, 0);
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        let mut k = Kernel::new();
        assert_eq!(m.run(&mut k, 1000), StopReason::Halted);
        assert_eq!(m.cpu.regs[6], 77);
    }

    #[test]
    fn sigreturn_restores_forged_frame() {
        // Push a frame redirecting pc to `target` with r5 = 0x42.
        let img = build(|a| {
            // Build frame on the stack: sp -= 17*8, fill.
            a.alui(fg_isa::insn::AluOp::Add, SP, -(8 * SIGFRAME_WORDS as i32));
            a.lea(R1, "target");
            a.st(R1, SP, 0); // pc
            a.movi(R2, 0x42);
            a.st(R2, SP, 8 * 6); // regs[5]
                                 // new sp must be sane: store current sp as regs[14].
            a.mov(R3, SP);
            a.st(R3, SP, 8 * 15);
            a.movi(R0, Sysno::Sigreturn as i32);
            a.syscall();
            a.halt(); // never reached
            a.label("target");
            a.mov(R10, R5);
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        let mut k = Kernel::new();
        assert_eq!(m.run(&mut k, 1000), StopReason::Halted);
        assert_eq!(m.cpu.regs[10], 0x42, "context switched to forged frame");
    }

    #[test]
    fn invalid_syscall_kills() {
        let img = build(|a| {
            a.movi(R0, 999);
            a.syscall();
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        assert_eq!(m.run(&mut Kernel::new(), 100), StopReason::Killed(SIGSYS));
    }

    #[test]
    fn interceptor_kills_sensitive_syscall_for_protected_process() {
        let img = build(|a| {
            a.movi(R0, Sysno::Mprotect as i32);
            a.syscall();
            a.halt();
        });
        let mut m = Machine::new(&img, 0x7000);
        let mut k = Kernel::new();
        k.install_interceptor(Box::new(DenyAll {
            sensitive: SensitiveSet::patharmor_default(),
            cr3: 0x7000,
        }));
        assert_eq!(m.run(&mut k, 100), StopReason::Killed(SIGKILL));
        assert!(k.violated());
        assert_eq!(k.violations, vec!["mprotect"]);
    }

    #[test]
    fn intercept_probe_records_check_latency() {
        let img = build(|a| {
            a.movi(R0, Sysno::Write as i32);
            a.syscall();
            a.movi(R0, Sysno::Gettimeofday as i32); // not sensitive: no sample
            a.syscall();
            a.halt();
        });
        let mut m = Machine::new(&img, 0x7000);
        let mut k = Kernel::new();
        struct AllowAll(u64);
        impl SyscallInterceptor for AllowAll {
            fn protects(&self, cr3: u64) -> bool {
                cr3 == self.0
            }
            fn is_sensitive(&self, nr: Sysno) -> bool {
                SensitiveSet::patharmor_default().contains(nr)
            }
            fn check(&mut self, _nr: Sysno, _ctx: &mut SyscallCtx<'_>) -> InterceptVerdict {
                InterceptVerdict::Allow
            }
        }
        k.install_interceptor(Box::new(AllowAll(0x7000)));
        let probe = Arc::new(Histogram::new());
        k.set_intercept_probe(Arc::clone(&probe));
        assert_eq!(m.run(&mut k, 1000), StopReason::Halted);
        assert_eq!(probe.count(), 1, "exactly the sensitive syscall was timed");
    }

    #[test]
    fn interceptor_ignores_other_processes() {
        let img = build(|a| {
            a.movi(R0, Sysno::Mprotect as i32);
            a.syscall();
            a.halt();
        });
        let mut m = Machine::new(&img, 0x8000); // different CR3
        let mut k = Kernel::new();
        k.install_interceptor(Box::new(DenyAll {
            sensitive: SensitiveSet::patharmor_default(),
            cr3: 0x7000,
        }));
        assert_eq!(m.run(&mut k, 100), StopReason::Halted);
        assert!(!k.violated());
    }

    #[test]
    fn interceptor_ignores_non_sensitive_syscalls() {
        let img = build(|a| {
            a.movi(R0, Sysno::Gettimeofday as i32);
            a.syscall();
            a.halt();
        });
        let mut m = Machine::new(&img, 0x7000);
        let mut k = Kernel::new();
        k.install_interceptor(Box::new(DenyAll {
            sensitive: SensitiveSet::patharmor_default(),
            cr3: 0x7000,
        }));
        assert_eq!(m.run(&mut k, 100), StopReason::Halted);
    }

    #[test]
    fn execve_logged() {
        let img = build(|a| {
            a.lea(R1, "path");
            a.movi(R2, 7);
            a.movi(R0, Sysno::Execve as i32);
            a.syscall();
            a.halt();
            a.data_bytes("path", b"/bin/sh");
        });
        let mut m = Machine::new(&img, 0x1000);
        let mut k = Kernel::new();
        assert_eq!(m.run(&mut k, 100), StopReason::Halted);
        assert_eq!(k.execve_log, vec!["/bin/sh".to_string()]);
    }

    #[test]
    fn gettimeofday_monotonic() {
        let img = build(|a| {
            a.movi(R0, Sysno::Gettimeofday as i32);
            a.syscall();
            a.mov(R9, R0);
            a.movi(R0, Sysno::Gettimeofday as i32);
            a.syscall();
            a.mov(R10, R0);
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        let mut k = Kernel::new();
        m.run(&mut k, 100);
        assert!(m.cpu.regs[10] > m.cpu.regs[9]);
    }
}
