//! # fg-kernel — the simulated OS substrate
//!
//! FlowGuard's runtime protection lives in a kernel module (§5): it
//! configures IPT per core, intercepts security-sensitive syscalls, runs the
//! flow check, and SIGKILLs violating processes. This crate provides the OS
//! side of that contract:
//!
//! * [`syscalls`] — the syscall ABI and the PathArmor-style sensitive set;
//! * [`kernel`] — the [`kernel::Kernel`] syscall handler (de-socketed I/O,
//!   in-memory filesystem, `sigreturn` signal frames, `mmap`) and the
//!   [`kernel::SyscallInterceptor`] hook the FlowGuard engine installs.
//!
//! Input is served from an in-memory stream rather than a socket — the
//! reproduction's equivalent of the paper's preeny/`desock` trick for
//! fuzzing network servers (§7).

pub mod kernel;
pub mod syscalls;

pub use kernel::{
    DenyAll, InterceptVerdict, Kernel, SyscallInterceptor, SIGFRAME_WORDS, SIGKILL, SIGSYS,
};
pub use syscalls::{SensitiveSet, Sysno};
