//! Kernel integration: filesystem surface, interceptor lifecycle, PMI
//! default behaviour.

use fg_cpu::machine::{Machine, StopReason};
use fg_isa::asm::Asm;
use fg_isa::image::{Image, Linker};
use fg_isa::insn::regs::*;
use fg_kernel::{DenyAll, Kernel, SensitiveSet, Sysno};

fn build(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new("app");
    a.export("main");
    a.label("main");
    f(&mut a);
    Linker::new(a.finish().unwrap()).link().unwrap()
}

#[test]
fn open_creates_file_entries_and_returns_fds() {
    let img = build(|a| {
        a.lea(R1, "p1");
        a.movi(R2, 4);
        a.movi(R0, Sysno::Open as i32);
        a.syscall();
        a.mov(R10, R0);
        a.lea(R1, "p2");
        a.movi(R2, 4);
        a.movi(R0, Sysno::Open as i32);
        a.syscall();
        a.mov(R11, R0);
        a.movi(R0, Sysno::Close as i32);
        a.syscall();
        a.halt();
        a.data_bytes("p1", b"/f/a");
        a.data_bytes("p2", b"/f/b");
    });
    let mut m = Machine::new(&img, 0x1000);
    let mut k = Kernel::new();
    assert_eq!(m.run(&mut k, 1000), StopReason::Halted);
    assert!(k.files.contains_key("/f/a"));
    assert!(k.files.contains_key("/f/b"));
    assert_ne!(m.cpu.regs[10], m.cpu.regs[11], "distinct fds");
}

#[test]
fn interceptor_can_be_removed_and_reinstalled() {
    let img = build(|a| {
        a.movi(R0, Sysno::Mprotect as i32);
        a.syscall();
        a.halt();
    });
    let mut k = Kernel::new();
    k.install_interceptor(Box::new(DenyAll {
        sensitive: SensitiveSet::patharmor_default(),
        cr3: 0x1000,
    }));
    let module = k.take_interceptor();
    assert!(module.is_some());
    // Without the module, the sensitive syscall sails through.
    let mut m = Machine::new(&img, 0x1000);
    assert_eq!(m.run(&mut k, 100), StopReason::Halted);
    assert!(!k.violated());
    // Reinstall: killed.
    k.install_interceptor(module.unwrap());
    let mut m2 = Machine::new(&img, 0x1000);
    assert_eq!(m2.run(&mut k, 100), StopReason::Killed(fg_kernel::SIGKILL));
}

#[test]
fn kernel_debug_output_is_informative() {
    let k = Kernel::with_input(b"abc");
    let dbg = format!("{k:?}");
    assert!(dbg.contains("input_len: 3"));
    assert!(dbg.contains("protected: false"));
}

#[test]
fn pmi_default_acknowledges_without_killing() {
    // A long loop with a tiny ToPA: PMIs fire, the default handler just
    // acknowledges, the program completes.
    let img = build(|a| {
        a.movi(R0, 80_000);
        a.label("spin");
        a.cmpi(R0, 0);
        a.jcc(fg_isa::insn::Cond::Le, "done");
        a.addi(R0, -1);
        a.jmp("spin");
        a.label("done");
        a.halt();
    });
    let mut m = Machine::new(&img, 0x1000);
    let mut unit = fg_cpu::IptUnit::flowguard(0x1000, fg_ipt::Topa::two_regions(4096).unwrap());
    unit.start(img.entry(), 0x1000);
    m.trace = fg_cpu::TraceUnit::Ipt(unit);
    let mut k = Kernel::new();
    assert_eq!(m.run(&mut k, 1_000_000), StopReason::Halted);
    assert!(
        m.trace.as_ipt().unwrap().topa().has_wrapped()
            || m.trace.as_ipt().unwrap().bytes_emitted() > 4096
    );
    assert!(!m.trace.as_ipt().unwrap().topa().pmi_pending(), "PMIs acknowledged");
}
