//! The conservative original CFG (O-CFG) of §4.1.
//!
//! Builds, per basic block, the full successor set:
//!
//! * direct edges (jumps, calls, conditional taken/fall-through, the
//!   fall-through of syscalls and block splits);
//! * indirect jump targets — PLT stubs resolve through the GOT (the
//!   inter-module mechanism of §4.1), other indirect jumps conservatively
//!   target the address-taken set;
//! * indirect call targets — the address-taken function entries admitted by
//!   the TypeArmor arity policy;
//! * return targets — call/return matching, including the paper's tail-call
//!   emulation: if `fun_b` tail-jumps to `fun_c`, `fun_c`'s returns inherit
//!   `fun_b`'s return sites.

use crate::bb::{BlockEnd, Disassembly};
use crate::typearmor::TypeArmor;
use fg_isa::image::Image;
use fg_isa::insn::{Insn, INSN_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Successor set of a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuccSet {
    /// No successors (`halt`).
    None,
    /// Statically known direct successors.
    Direct(Vec<u64>),
    /// Indirect jump target set.
    IndJmp(Vec<u64>),
    /// Indirect call target set.
    IndCall(Vec<u64>),
    /// Return target set (valid return addresses).
    Ret(Vec<u64>),
}

impl SuccSet {
    /// The targets regardless of kind.
    pub fn targets(&self) -> &[u64] {
        match self {
            SuccSet::None => &[],
            SuccSet::Direct(v) | SuccSet::IndJmp(v) | SuccSet::IndCall(v) | SuccSet::Ret(v) => v,
        }
    }

    /// Whether this is an indirect (TIP-producing) successor set.
    pub fn is_indirect(&self) -> bool {
        matches!(self, SuccSet::IndJmp(_) | SuccSet::IndCall(_) | SuccSet::Ret(_))
    }
}

/// The conservative whole-image CFG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OCfg {
    /// Disassembly (blocks, address-taken set, PLT resolution).
    pub disasm: Disassembly,
    /// TypeArmor analysis (functions, arity policy).
    pub typearmor: TypeArmor,
    /// Successor sets, parallel to `disasm.blocks`.
    pub succs: Vec<SuccSet>,
}

impl OCfg {
    /// Builds the O-CFG for a linked image.
    pub fn build(image: &Image) -> OCfg {
        let disasm = crate::bb::disassemble(image);
        let typearmor = crate::typearmor::analyze(image, &disasm);
        Self::build_with(disasm, typearmor, None)
    }

    /// Builds the O-CFG with value-set-analysis refinement: each indirect
    /// call/jump target set is intersected with the concrete table the
    /// [`crate::vsa`] pass resolved for that site (falling back to the
    /// conservative set when the site is unresolved or the intersection is
    /// empty), and call/return matching uses the narrowed sets. The result
    /// keeps the conservative guarantee for benign executions — VSA only
    /// removes edges no run can take — while shrinking AIA.
    pub fn build_refined(image: &Image) -> OCfg {
        let disasm = crate::bb::disassemble(image);
        let typearmor = crate::typearmor::analyze(image, &disasm);
        let vsa = crate::vsa::analyze(image, &disasm, &typearmor);
        Self::build_with(disasm, typearmor, Some(&vsa))
    }

    fn build_with(
        disasm: Disassembly,
        typearmor: TypeArmor,
        vsa: Option<&crate::vsa::Vsa>,
    ) -> OCfg {
        // Narrow a site's conservative target set through VSA when available.
        let narrow = |site: u64, base: Vec<u64>| -> Vec<u64> {
            match vsa {
                Some(v) => v.narrow(site, base),
                None => base,
            }
        };

        // Universe of indirectly callable function entries.
        let callable: Vec<u64> = disasm
            .address_taken
            .iter()
            .copied()
            .filter(|&va| typearmor.entry_at(va).is_some())
            .collect();

        // --- call/return matching with tail-call emulation -------------
        // return_sites[function index] = valid return addresses.
        let mut ret_sites: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); typearmor.functions.len()];
        // tail edges f → g (g inherits f's return sites).
        let mut tail_edges: Vec<(usize, usize)> = Vec::new();

        for b in &disasm.blocks {
            let BlockEnd::Terminator(term) = b.term else { continue };
            let site = b.last_insn();
            match term {
                Insn::Call { target } => {
                    let ret_addr = site + INSN_SIZE;
                    // Follow the target through PLT stubs to real functions.
                    for f in resolve_call_targets(&disasm, &typearmor, target) {
                        ret_sites[f].insert(ret_addr);
                    }
                }
                Insn::CallInd { .. } => {
                    let ret_addr = site + INSN_SIZE;
                    let admitted: Vec<u64> =
                        callable.iter().copied().filter(|&t| typearmor.admits(site, t)).collect();
                    for t in narrow(site, admitted) {
                        if let Ok(fi) = typearmor.functions.binary_search_by_key(&t, |f| f.entry) {
                            ret_sites[fi].insert(ret_addr);
                        }
                    }
                }
                Insn::Jmp { target } => {
                    // Possible tail call: direct jump to another function's
                    // entry.
                    if let (Some(from), Ok(to)) = (
                        typearmor.function_of(site),
                        typearmor.functions.binary_search_by_key(&target, |f| f.entry),
                    ) {
                        if from != to {
                            tail_edges.push((from, to));
                        }
                    }
                }
                Insn::JmpInd { .. } => {
                    // PLT stubs and indirect tail jumps.
                    let from = typearmor.function_of(site);
                    let targets: Vec<u64> = match disasm.plt_targets.get(&site) {
                        Some(&t) => vec![t],
                        None => narrow(site, callable.clone()),
                    };
                    if let Some(from) = from {
                        for t in targets {
                            if let Ok(to) =
                                typearmor.functions.binary_search_by_key(&t, |f| f.entry)
                            {
                                if from != to {
                                    tail_edges.push((from, to));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Fixpoint propagation of return sites along tail edges.
        let mut changed = true;
        while changed {
            changed = false;
            for &(from, to) in &tail_edges {
                let add: Vec<u64> = ret_sites[from].difference(&ret_sites[to]).copied().collect();
                if !add.is_empty() {
                    ret_sites[to].extend(add);
                    changed = true;
                }
            }
        }

        // --- successor sets ---------------------------------------------
        let mut succs = Vec::with_capacity(disasm.blocks.len());
        for b in &disasm.blocks {
            let s = match b.term {
                BlockEnd::FallIntoNext => SuccSet::Direct(vec![b.end]),
                BlockEnd::Terminator(term) => {
                    let site = b.last_insn();
                    match term {
                        Insn::Halt => SuccSet::None,
                        Insn::Jmp { target } | Insn::Call { target } => {
                            SuccSet::Direct(vec![target])
                        }
                        Insn::Jcc { target, .. } => SuccSet::Direct(vec![target, b.end]),
                        Insn::Syscall => SuccSet::Direct(vec![b.end]),
                        Insn::JmpInd { .. } => match disasm.plt_targets.get(&site) {
                            Some(&t) => SuccSet::IndJmp(vec![t]),
                            None => SuccSet::IndJmp(narrow(site, callable.clone())),
                        },
                        Insn::CallInd { .. } => SuccSet::IndCall(narrow(
                            site,
                            callable
                                .iter()
                                .copied()
                                .filter(|&t| typearmor.admits(site, t))
                                .collect(),
                        )),
                        Insn::Ret => {
                            let sites = typearmor
                                .function_of(site)
                                .map(|fi| ret_sites[fi].iter().copied().collect())
                                .unwrap_or_default();
                            SuccSet::Ret(sites)
                        }
                        _ => unreachable!("non-terminator as block end"),
                    }
                }
            };
            succs.push(s);
        }

        OCfg { disasm, typearmor, succs }
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(|s| s.targets().len()).sum()
    }

    /// Basic-block count.
    pub fn block_count(&self) -> usize {
        self.disasm.blocks.len()
    }

    /// Per-module `(block count, edge count)` keyed by module index.
    pub fn per_module_counts(&self) -> BTreeMap<usize, (usize, usize)> {
        let mut out: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for (b, s) in self.disasm.blocks.iter().zip(&self.succs) {
            let e = out.entry(b.module).or_default();
            e.0 += 1;
            e.1 += s.targets().len();
        }
        out
    }

    /// Whether the O-CFG admits the transfer `from_block_term → to`.
    pub fn admits(&self, from_block: usize, to: u64) -> bool {
        self.succs[from_block].targets().contains(&to)
    }
}

/// Resolves a direct call target through PLT stubs to function indices.
fn resolve_call_targets(disasm: &Disassembly, ta: &TypeArmor, target: u64) -> Vec<usize> {
    // Direct call straight at a function entry.
    if let Ok(fi) = ta.functions.binary_search_by_key(&target, |f| f.entry) {
        return vec![fi];
    }
    // Call into a PLT stub: find the stub's indirect jump, read its resolved
    // target.
    if let Some(bi) = disasm.block_containing(target) {
        let b = &disasm.blocks[bi];
        if let BlockEnd::Terminator(Insn::JmpInd { .. }) = b.term {
            if let Some(&t) = disasm.plt_targets.get(&b.last_insn()) {
                if let Ok(fi) = ta.functions.binary_search_by_key(&t, |f| f.entry) {
                    return vec![fi];
                }
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;
    use fg_isa::insn::regs::*;
    use fg_isa::insn::Cond;

    fn image() -> Image {
        let mut lib = Asm::new("libc");
        lib.export("util");
        lib.label("util");
        lib.movi(R0, 1);
        lib.ret();

        let mut a = Asm::new("app");
        a.import("util").needs("libc");
        a.export("main");
        a.label("main");
        a.movi(R1, 1); // 0
        a.cmpi(R1, 0); // 1
        a.jcc(Cond::Gt, "big"); // 2
        a.halt(); // 3
        a.label("big"); // 4
        a.lea(R6, "table"); // 4
        a.ld(R7, R6, 0); // 5
        a.calli(R7); // 6
        a.call("util"); // 7 — through the PLT
        a.call("tailer"); // 8
        a.call("tailee"); // 9 — makes tailee a discovered function
        a.halt(); // 10
        a.label("handler"); // 11
        a.mov(R8, R1); // 11
        a.ret(); // 12
        a.label("tailer"); // 13
        a.jmp("tailee"); // 13 — tail call
        a.label("tailee"); // 14
        a.movi(R9, 5); // 14
        a.ret(); // 15
        a.data_ptrs("table", &["handler"]);
        Linker::new(a.finish().unwrap()).library(lib.finish().unwrap()).link().unwrap()
    }

    fn built() -> (Image, OCfg) {
        let img = image();
        let cfg = OCfg::build(&img);
        (img, cfg)
    }

    fn succ_of(cfg: &OCfg, site: u64) -> &SuccSet {
        let bi = cfg
            .disasm
            .blocks
            .iter()
            .position(|b| matches!(b.term, BlockEnd::Terminator(_)) && b.last_insn() == site)
            .unwrap_or_else(|| panic!("no terminator at {site:#x}"));
        &cfg.succs[bi]
    }

    #[test]
    fn jcc_has_two_direct_successors() {
        let (img, cfg) = built();
        let main = img.symbol("main").unwrap();
        let s = succ_of(&cfg, main + 2 * INSN_SIZE);
        assert_eq!(s, &SuccSet::Direct(vec![main + 4 * INSN_SIZE, main + 3 * INSN_SIZE]));
    }

    #[test]
    fn indirect_call_targets_are_address_taken_set() {
        let (img, cfg) = built();
        let main = img.symbol("main").unwrap();
        let handler = main + 11 * INSN_SIZE;
        let s = succ_of(&cfg, main + 6 * INSN_SIZE);
        assert!(matches!(s, SuccSet::IndCall(_)));
        assert!(s.targets().contains(&handler));
    }

    #[test]
    fn plt_jump_has_single_resolved_target() {
        let (img, cfg) = built();
        let util = img.symbol("util").unwrap();
        let plt = img.executable().plt_start;
        // Stub's jmp is the third instruction.
        let s = succ_of(&cfg, plt + 2 * INSN_SIZE);
        assert_eq!(s, &SuccSet::IndJmp(vec![util]));
    }

    #[test]
    fn return_sites_match_call_sites() {
        let (img, cfg) = built();
        let main = img.symbol("main").unwrap();
        let util = img.symbol("util").unwrap();
        // util's ret should target main+8*8 (after the `call util`).
        let s = succ_of(&cfg, util + INSN_SIZE);
        assert!(matches!(s, SuccSet::Ret(_)));
        assert!(
            s.targets().contains(&(main + 8 * INSN_SIZE)),
            "call/return matching through the PLT, got {:x?}",
            s.targets()
        );
    }

    #[test]
    fn tail_call_inherits_return_sites() {
        let (img, cfg) = built();
        let main = img.symbol("main").unwrap();
        // tailee's ret must return both to its own caller (main+10*8) and,
        // through the tail-call fixpoint, to tailer's caller (main+9*8).
        let tailee_ret = main + 15 * INSN_SIZE;
        let s = succ_of(&cfg, tailee_ret);
        assert!(
            s.targets().contains(&(main + 9 * INSN_SIZE)),
            "tail-call emulation, got {:x?}",
            s.targets()
        );
        assert!(s.targets().contains(&(main + 10 * INSN_SIZE)));
    }

    #[test]
    fn handler_returns_to_indirect_call_site() {
        let (img, cfg) = built();
        let main = img.symbol("main").unwrap();
        let handler_ret = main + 12 * INSN_SIZE;
        let s = succ_of(&cfg, handler_ret);
        assert!(s.targets().contains(&(main + 7 * INSN_SIZE)));
    }

    #[test]
    fn halt_has_no_successors() {
        let (img, cfg) = built();
        let main = img.symbol("main").unwrap();
        assert_eq!(succ_of(&cfg, main + 3 * INSN_SIZE), &SuccSet::None);
    }

    #[test]
    fn counts_are_consistent() {
        let (_, cfg) = built();
        assert!(cfg.block_count() > 8);
        assert!(cfg.edge_count() > cfg.block_count() / 2);
        let per: usize = cfg.per_module_counts().values().map(|&(b, _)| b).sum();
        assert_eq!(per, cfg.block_count());
    }

    #[test]
    fn no_false_positives_against_execution() {
        // Run the program; every executed transfer must be admitted.
        let (img, cfg) = built();
        let mut m = fg_cpu_machine(&img);
        m.enable_branch_log();
        let stop = m.run(&mut fg_cpu::NullKernel, 10_000);
        assert_eq!(stop, fg_cpu::StopReason::Halted);
        for b in m.branch_log.as_ref().unwrap() {
            let bi = cfg.disasm.block_containing(b.from).expect("branch from known block");
            assert!(
                cfg.admits(bi, b.to) || b.kind == fg_isa::insn::CofiKind::FarTransfer,
                "O-CFG must admit {:#x} → {:#x} ({:?})",
                b.from,
                b.to,
                b.kind
            );
        }
    }

    fn fg_cpu_machine(img: &Image) -> fg_cpu::Machine {
        fg_cpu::Machine::new(img, 0x1000)
    }
}
