//! Dominator trees over the O-CFG block graph.
//!
//! A block `a` *dominates* `b` when every path from the entry to `b` passes
//! through `a`. The audit pass uses the tree two ways: the tree's shape
//! (depth, coverage) is a structural fingerprint of the artifact that the
//! precision report records, and the set of blocks dominated by the entry
//! block is exactly the set reachable along the successor relation — a
//! cross-check for the independent BFS in [`crate::callgraph`].
//!
//! The construction is the Cooper–Harvey–Kennedy iterative algorithm over a
//! reverse-postorder numbering: simple, allocation-light, and fast enough
//! for whole-image graphs (the loop almost always converges in two passes).

use crate::ocfg::OCfg;
use fg_isa::image::Image;

/// The immediate-dominator tree of a directed graph rooted at one node.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` — the immediate dominator of `b`; `None` for the root and
    /// for nodes unreachable from it.
    idom: Vec<Option<usize>>,
    /// Depth in the tree (`0` at the root; unreachable nodes hold `0` too —
    /// disambiguate with [`DomTree::is_reachable`]).
    depth: Vec<u32>,
    root: usize,
}

impl DomTree {
    /// Builds the dominator tree of the graph with `n` nodes rooted at
    /// `root`. `succs(node, out)` must append `node`'s successors to `out`
    /// (duplicates are fine).
    pub fn build(n: usize, root: usize, mut succs: impl FnMut(usize, &mut Vec<usize>)) -> DomTree {
        assert!(root < n, "root out of range");

        // Reverse postorder over the reachable subgraph.
        let mut order = Vec::with_capacity(n); // postorder
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let mut scratch = Vec::new();
        scratch.clear();
        succs(root, &mut scratch);
        stack.push((root, std::mem::take(&mut scratch), 0));
        state[root] = 1;
        while let Some((node, kids, next)) = stack.last_mut() {
            if let Some(&k) = kids.get(*next) {
                *next += 1;
                if state[k] == 0 {
                    state[k] = 1;
                    scratch.clear();
                    succs(k, &mut scratch);
                    let kid_succs = scratch.clone();
                    stack.push((k, kid_succs, 0));
                }
            } else {
                state[*node] = 2;
                order.push(*node);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder, root first

        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b] = i;
        }

        // Predecessor lists restricted to reachable nodes.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &b in &order {
            scratch.clear();
            succs(b, &mut scratch);
            for &s in &scratch {
                if rpo_num[s] != usize::MAX {
                    preds[s].push(b);
                }
            }
        }

        // CHK iteration to fixpoint.
        let mut idom = vec![usize::MAX; n];
        idom[root] = root;
        let intersect = |idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo[a] > rpo[b] {
                    a = idom[a];
                }
                while rpo[b] > rpo[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &preds[b] {
                    if idom[p] == usize::MAX {
                        continue; // not yet processed this round
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_num, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        let mut depth = vec![0u32; n];
        for &b in &order {
            if b != root && idom[b] != usize::MAX {
                depth[b] = depth[idom[b]] + 1;
            }
        }
        let idom = (0..n).map(|b| (b != root && idom[b] != usize::MAX).then(|| idom[b])).collect();
        DomTree { idom, depth, root }
    }

    /// The tree's root.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The immediate dominator of `b` (`None` at the root and for
    /// unreachable nodes).
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom[b]
    }

    /// Whether `b` is reachable from the root.
    pub fn is_reachable(&self, b: usize) -> bool {
        b == self.root || self.idom[b].is_some()
    }

    /// Depth of `b` below the root (0 at the root; meaningless for
    /// unreachable nodes).
    pub fn depth(&self, b: usize) -> u32 {
        self.depth[b]
    }

    /// Whether `a` dominates `b` (reflexive: every node dominates itself).
    pub fn dominates(&self, a: usize, mut b: usize) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        loop {
            if a == b {
                return true;
            }
            match self.idom[b] {
                Some(p) => b = p,
                None => return false,
            }
        }
    }

    /// Number of reachable nodes (tree members).
    pub fn reachable_count(&self) -> usize {
        (0..self.idom.len()).filter(|&b| self.is_reachable(b)).count()
    }

    /// The maximum depth of any tree node.
    pub fn max_depth(&self) -> u32 {
        (0..self.idom.len())
            .filter(|&b| self.is_reachable(b))
            .map(|b| self.depth[b])
            .max()
            .unwrap_or(0)
    }
}

/// The dominator tree of a linked image's O-CFG block graph, rooted at the
/// block containing the image entry point.
pub fn block_dominators(image: &Image, ocfg: &OCfg) -> Option<DomTree> {
    let root = ocfg.disasm.block_at(image.entry())?;
    Some(DomTree::build(ocfg.disasm.blocks.len(), root, |bi, out| {
        for &t in ocfg.succs[bi].targets() {
            if let Some(ti) = ocfg.disasm.block_at(t) {
                out.push(ti);
            }
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic diamond: 0 → {1, 2} → 3, plus an unreachable node 4.
    fn diamond() -> DomTree {
        DomTree::build(5, 0, |b, out| match b {
            0 => out.extend([1, 2]),
            1 | 2 => out.push(3),
            _ => {}
        })
    }

    #[test]
    fn diamond_joins_at_root() {
        let t = diamond();
        assert_eq!(t.idom(0), None);
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(0));
        assert_eq!(t.idom(3), Some(0), "the join point is dominated by the fork, not a branch");
        assert!(t.dominates(0, 3));
        assert!(!t.dominates(1, 3));
        assert!(t.dominates(3, 3), "dominance is reflexive");
        assert_eq!(t.depth(3), 1);
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn unreachable_nodes_are_outside_the_tree() {
        let t = diamond();
        assert!(!t.is_reachable(4));
        assert_eq!(t.idom(4), None);
        assert!(!t.dominates(0, 4));
        assert_eq!(t.reachable_count(), 4);
    }

    #[test]
    fn chain_with_back_edge() {
        // 0 → 1 → 2 → 1 (loop): 1 dominates 2, 0 dominates both.
        let t = DomTree::build(3, 0, |b, out| match b {
            0 | 2 => out.push(1),
            1 => out.push(2),
            _ => {}
        });
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(1));
        assert!(t.dominates(1, 2));
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn image_dominators_cover_reachable_blocks() {
        let w = fg_workloads::nginx_patched();
        let ocfg = OCfg::build(&w.image);
        let t = block_dominators(&w.image, &ocfg).expect("entry block exists");
        let reach = crate::callgraph::reachable_blocks(&w.image, &ocfg);
        for (bi, &r) in reach.iter().enumerate() {
            assert_eq!(
                t.is_reachable(bi),
                r,
                "dominator tree membership must agree with the reachability BFS (block {bi})"
            );
        }
        assert!(t.max_depth() >= 2, "real programs nest");
    }
}
