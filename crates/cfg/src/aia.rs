//! The Average Indirect targets Allowed (AIA) metric of §4.3.
//!
//! ```text
//! AIA = (1/n) Σᵢ |Tᵢ|
//! ```
//!
//! where `n` is the number of indirect branch instructions and `Tᵢ` the
//! allowed target set of the `i`-th one. Smaller is more precise. The paper
//! uses four variants (Table 4):
//!
//! * **O-CFG AIA** — the conservative static CFG;
//! * **ITC-CFG AIA** — after the collapse, out-degree of IT-BB nodes (larger:
//!   the Figure 4 precision derogation);
//! * **AIA w/ TNT** — ITC edges plus TNT labels restore the direct-fork
//!   information, recovering the O-CFG value;
//! * **FlowGuard AIA** — the §7.1.1 interpolation
//!   `ratio·AIA_fine + (1−ratio)·AIA_itc` with the slow path's fine-grained
//!   policy (TypeArmor forward edges + single-target shadow-stack returns).

use crate::itc::ItcCfg;
use crate::ocfg::{OCfg, SuccSet};

/// AIA of the conservative O-CFG: mean allowed-target count over indirect
/// branch instructions.
pub fn aia_ocfg(ocfg: &OCfg) -> f64 {
    let sets: Vec<usize> =
        ocfg.succs.iter().filter(|s| s.is_indirect()).map(|s| s.targets().len()).collect();
    mean(&sets)
}

/// AIA of the ITC-CFG: mean out-degree over IT-BB nodes with outgoing edges.
pub fn aia_itc(itc: &ItcCfg) -> f64 {
    let mut sets = Vec::with_capacity(itc.node_count());
    let mut cur: Option<(u64, usize)> = None;
    for (from, _, _) in itc.iter_edges() {
        match &mut cur {
            Some((f, n)) if *f == from => *n += 1,
            _ => {
                if let Some((_, n)) = cur.take() {
                    sets.push(n);
                }
                cur = Some((from, 1));
            }
        }
    }
    if let Some((_, n)) = cur {
        sets.push(n);
    }
    mean(&sets)
}

/// AIA of the ITC-CFG once TNT information is attached: the direct forks
/// removed by the collapse are recovered, so precision returns to the O-CFG
/// level (§4.3, Table 4's parenthesised column).
pub fn aia_itc_with_tnt(ocfg: &OCfg) -> f64 {
    aia_ocfg(ocfg)
}

/// AIA of the slow path's fine-grained policy: TypeArmor-restricted forward
/// edges plus a shadow stack that pins every return to a single target.
pub fn aia_fine(ocfg: &OCfg) -> f64 {
    let sets: Vec<usize> = ocfg
        .succs
        .iter()
        .filter_map(|s| match s {
            // Shadow stack: at most a single target (an unreachable ret
            // keeps its empty set).
            SuccSet::Ret(v) => Some(v.len().min(1)),
            SuccSet::IndJmp(v) | SuccSet::IndCall(v) => Some(v.len()),
            _ => None,
        })
        .collect();
    mean(&sets)
}

/// AIA of a VSA-refined O-CFG (see [`OCfg::build_refined`]): the same mean
/// over indirect branch sites, but with each table-driven site narrowed to
/// the concrete target set the value-set analysis resolved.
pub fn aia_vsa(refined: &OCfg) -> f64 {
    aia_ocfg(refined)
}

/// The §7.1.1 interpolation: the effective AIA seen by an attacker when a
/// fraction `cred_ratio` of checked edges is high-credit (and therefore
/// subject to the fine-grained slow-path policy on violation).
///
/// # Panics
///
/// Panics if `cred_ratio` is outside `[0, 1]`.
pub fn aia_flowguard(cred_ratio: f64, fine: f64, itc: f64) -> f64 {
    assert!((0.0..=1.0).contains(&cred_ratio), "cred_ratio must be within [0,1]");
    cred_ratio * fine + (1.0 - cred_ratio) * itc
}

fn mean(sets: &[usize]) -> f64 {
    if sets.is_empty() {
        return 0.0;
    }
    sets.iter().sum::<usize>() as f64 / sets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_interpolates() {
        let fine = 2.0;
        let itc = 100.0;
        assert_eq!(aia_flowguard(1.0, fine, itc), 2.0);
        assert_eq!(aia_flowguard(0.0, fine, itc), 100.0);
        let mid = aia_flowguard(0.7, fine, itc);
        assert!((mid - (0.7 * 2.0 + 0.3 * 100.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "within [0,1]")]
    fn formula_validates_ratio() {
        let _ = aia_flowguard(1.5, 1.0, 2.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3, 5]), 4.0);
    }
}
