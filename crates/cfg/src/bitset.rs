//! Tier-0 policy: a dense bitset of valid indirect-transfer entry points.
//!
//! FineIBT-style coarse CFI reduces "is this target plausible at all?" to a
//! single bit probe: one bit per instruction slot, set exactly where an
//! indirect transfer may legitimately land. FlowGuard extracts this set
//! statically from the ITC-CFG node set — every ITC node is by construction
//! an indirect target the O-CFG admits — and ships it as its own deployment
//! artifact. The runtime fast path probes it *before* the ITC edge lookup:
//! a clear bit proves the target is outside every ITC target set, so the
//! transfer is malicious without touching the edge arrays, while a set bit
//! simply falls through to the precise per-edge check. Because the bitset is
//! a superset of the ITC node set (fg-verify rule `FG-X01` enforces it), the
//! probe can never reject a transfer the precise check would admit: zero
//! false escalations on benign runs.
//!
//! Layout: one shard per module code range, one bit per [`INSN_SIZE`] slot,
//! packed into `u64` words. Lookup is a binary search over the (sorted,
//! disjoint) shards plus a shift/mask — no hashing, no per-node search.

use crate::itc::ItcCfg;
use fg_isa::image::Image;
use fg_isa::insn::INSN_SIZE;
use serde::{Deserialize, Serialize};

/// One module's slice of the bitset: the code range `[base, limit)` with one
/// bit per instruction slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitShard {
    /// First code address covered (module base).
    pub base: u64,
    /// One past the last code address covered (module `exec_end`).
    pub limit: u64,
    /// The bits, slot `i` covering `base + i * INSN_SIZE`.
    pub words: Vec<u64>,
}

impl BitShard {
    fn slot(&self, va: u64) -> Option<usize> {
        if va < self.base || va >= self.limit || !va.is_multiple_of(INSN_SIZE) {
            return None;
        }
        Some(((va - self.base) / INSN_SIZE) as usize)
    }
}

/// The dense valid-entry-point bitset over an image's code ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryBitset {
    /// Shards sorted by `base`, ranges disjoint.
    pub shards: Vec<BitShard>,
}

impl EntryBitset {
    /// An all-clear bitset covering every module code range of `image`.
    pub fn for_image(image: &Image) -> EntryBitset {
        let mut shards: Vec<BitShard> = image
            .modules()
            .iter()
            .filter(|m| m.exec_end > m.base)
            .map(|m| {
                let slots = ((m.exec_end - m.base) / INSN_SIZE) as usize;
                BitShard { base: m.base, limit: m.exec_end, words: vec![0; slots.div_ceil(64)] }
            })
            .collect();
        shards.sort_by_key(|s| s.base);
        EntryBitset { shards }
    }

    /// The tier-0 policy for a deployment: every ITC node address set.
    pub fn from_itc(image: &Image, itc: &ItcCfg) -> EntryBitset {
        let mut bits = EntryBitset::for_image(image);
        for &n in itc.raw_view().node_addrs {
            bits.insert(n);
        }
        bits
    }

    /// Sets the bit for `va`. Returns `false` (and does nothing) when `va`
    /// falls outside every shard or off the instruction grid.
    pub fn insert(&mut self, va: u64) -> bool {
        let Some(si) = self.shard_of(va) else { return false };
        let Some(slot) = self.shards[si].slot(va) else { return false };
        self.shards[si].words[slot / 64] |= 1u64 << (slot % 64);
        true
    }

    /// Clears the bit for `va` (testing aid — a sound policy never needs
    /// this). Returns whether the bit was previously set.
    pub fn remove(&mut self, va: u64) -> bool {
        let Some(si) = self.shard_of(va) else { return false };
        let Some(slot) = self.shards[si].slot(va) else { return false };
        let mask = 1u64 << (slot % 64);
        let was = self.shards[si].words[slot / 64] & mask != 0;
        self.shards[si].words[slot / 64] &= !mask;
        was
    }

    /// Whether `va` is a valid tier-0 entry point.
    #[inline]
    pub fn contains(&self, va: u64) -> bool {
        let Some(si) = self.shard_of(va) else { return false };
        let Some(slot) = self.shards[si].slot(va) else { return false };
        self.shards[si].words[slot / 64] & (1u64 << (slot % 64)) != 0
    }

    #[inline]
    fn shard_of(&self, va: u64) -> Option<usize> {
        let i = self.shards.partition_point(|s| s.limit <= va);
        (i < self.shards.len() && va >= self.shards[i].base).then_some(i)
    }

    /// Number of set bits (valid entry points).
    pub fn set_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.words.iter().map(|w| w.count_ones() as usize).sum::<usize>())
            .sum()
    }

    /// Number of instruction slots covered.
    pub fn slots(&self) -> usize {
        self.shards.iter().map(|s| ((s.limit - s.base) / INSN_SIZE) as usize).sum()
    }

    /// Fraction of covered slots that are valid entry points.
    pub fn density(&self) -> f64 {
        let slots = self.slots();
        if slots == 0 {
            0.0
        } else {
            self.set_bits() as f64 / slots as f64
        }
    }

    /// Approximate resident size of the bit storage.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.words.len() * 8 + 16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocfg::OCfg;

    fn deployed() -> (Image, ItcCfg, EntryBitset) {
        let w = fg_workloads::nginx_patched();
        let ocfg = OCfg::build(&w.image);
        let itc = ItcCfg::build(&ocfg);
        let bits = EntryBitset::from_itc(&w.image, &itc);
        (w.image, itc, bits)
    }

    #[test]
    fn covers_every_itc_node() {
        let (_, itc, bits) = deployed();
        for &n in itc.raw_view().node_addrs {
            assert!(bits.contains(n), "node {n:#x} missing from the tier-0 bitset");
        }
        assert_eq!(bits.set_bits(), itc.node_count());
    }

    #[test]
    fn rejects_non_nodes_and_off_grid_addresses() {
        let (image, itc, bits) = deployed();
        let v = itc.raw_view();
        assert!(!bits.contains(v.node_addrs[0] + 1), "mid-instruction address");
        assert!(!bits.contains(0), "address outside every module");
        // Some on-grid code address that is not an ITC node must be clear.
        let m = &image.modules()[0];
        let clear = (m.base..m.exec_end)
            .step_by(INSN_SIZE as usize)
            .find(|va| !v.node_addrs.contains(va))
            .expect("module has non-node slots");
        assert!(!bits.contains(clear));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let (image, _, mut bits) = deployed();
        let m = &image.modules()[0];
        let va = m.base + 3 * INSN_SIZE;
        let before = bits.contains(va);
        bits.insert(va);
        assert!(bits.contains(va));
        assert!(bits.remove(va));
        assert!(!bits.contains(va));
        assert!(!bits.insert(va + 1), "off-grid insert refused");
        assert!(!bits.insert(u64::MAX - 7), "out-of-range insert refused");
        if before {
            bits.insert(va);
        }
    }

    #[test]
    fn density_and_size_are_sane() {
        let (image, _, bits) = deployed();
        assert_eq!(bits.slots() as u64, image.total_insns());
        assert!(bits.density() > 0.0 && bits.density() < 1.0);
        assert!(bits.memory_bytes() >= bits.slots() / 8);
        assert!(bits.memory_bytes() < bits.slots() * 2, "dense bitset stays near one bit per slot");
    }

    #[test]
    fn serde_roundtrip() {
        let (_, _, bits) = deployed();
        let json = serde_json::to_string(&bits).unwrap();
        let back: EntryBitset = serde_json::from_str(&json).unwrap();
        assert_eq!(bits, back);
    }
}
