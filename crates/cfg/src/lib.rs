//! # fg-cfg — static binary analysis and CFG reconstruction
//!
//! The offline half of FlowGuard (§4): from a linked binary image to the
//! credit-labeled, IPT-compatible control-flow graph.
//!
//! Pipeline:
//!
//! 1. [`bb`] — linear-sweep disassembly, basic blocks, address-taken
//!    discovery, PLT/GOT resolution;
//! 2. [`typearmor`] — use-def/arity restriction of indirect call targets
//!    (the TypeArmor policy the paper adopts);
//! 3. [`ocfg`] — the conservative O-CFG with call/return matching and
//!    tail-call emulation;
//! 4. [`vsa`] — value-set analysis: abstract interpretation that resolves
//!    table-driven indirect branches to concrete target sets, further
//!    narrowing the TypeArmor sets (opt-in via [`OCfg::build_refined`]);
//! 5. [`itc`] — the indirect-targets-connected CFG (ITC-CFG) searched by the
//!    runtime fast path, plus per-edge [`itc::Credit`] and TNT labels;
//! 6. [`aia`] — the Average-Indirect-targets-Allowed precision metric.
//!
//! The crate-level guarantee mirrors the paper's: the O-CFG (and hence the
//! ITC-CFG) is *conservative* — any flow the program can actually execute is
//! admitted, so FlowGuard raises no false positives (§7.1.2).
//!
//! # Examples
//!
//! ```
//! use fg_isa::asm::Asm;
//! use fg_isa::image::Linker;
//! use fg_cfg::{ItcCfg, OCfg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new("app");
//! a.export("main");
//! a.label("main");
//! a.lea(fg_isa::insn::regs::R1, "table");
//! a.ld(fg_isa::insn::regs::R2, fg_isa::insn::regs::R1, 0);
//! a.calli(fg_isa::insn::regs::R2);
//! a.halt();
//! a.label("handler");
//! a.ret();
//! a.data_ptrs("table", &["handler"]);
//!
//! let image = Linker::new(a.finish()?).link()?;
//! let ocfg = OCfg::build(&image);
//! let itc = ItcCfg::build(&ocfg);
//! assert!(itc.node_count() >= 2);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]

pub mod aia;
pub mod bb;
pub mod bitset;
pub mod callgraph;
pub mod dominator;
pub mod itc;
pub mod ocfg;
pub mod typearmor;
pub mod vsa;

pub use aia::{aia_fine, aia_flowguard, aia_itc, aia_itc_with_tnt, aia_ocfg, aia_vsa};
pub use bb::{BasicBlock, BlockEnd, Disassembly};
pub use bitset::{BitShard, EntryBitset};
pub use callgraph::{reachable_blocks, CallGraph};
pub use dominator::{block_dominators, DomTree};
pub use itc::{Credit, EdgeIdx, ItcCfg, ItcRawView, TntInfo, TntSig};
pub use ocfg::{OCfg, SuccSet};
pub use typearmor::{Function, TypeArmor};
pub use vsa::Vsa;
