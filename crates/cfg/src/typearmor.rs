//! TypeArmor-style use-def / liveness restriction of indirect call targets.
//!
//! FlowGuard "restricts the targets using the TypeArmor's use-def and
//! liveness analysis" (§4.1). The reproduction implements the same idea over
//! the synthetic ABI (arguments in `r1`–`r5`):
//!
//! * **consumed(f)** — an *under*-estimate of the arguments function `f`
//!   reads: argument registers read before being written along the
//!   straight-line prefix of `f` (instructions guaranteed to execute);
//! * **prepared(c)** — an *over*-estimate of the arguments call site `c`
//!   sets up: argument registers written anywhere in the function before
//!   the call.
//!
//! An indirect call edge `c → f` is admitted iff `prepared(c) ≥ consumed(f)`.
//! The under/over directions guarantee the restriction never introduces
//! false positives, exactly the conservatism the paper requires.

use crate::bb::Disassembly;
use fg_isa::image::Image;
use fg_isa::insn::{Insn, Reg, INSN_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of argument registers in the ABI (`r1`–`r5`).
pub const ARG_REGS: u8 = 5;

/// A discovered function: an entry plus its linear extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Entry address.
    pub entry: u64,
    /// Exclusive end (next function entry or module code end).
    pub end: u64,
    /// Containing module index.
    pub module: usize,
    /// Under-estimate of arguments consumed.
    pub consumed_args: u8,
}

impl Function {
    /// Whether `va` lies inside this function's extent.
    pub fn contains(&self, va: u64) -> bool {
        va >= self.entry && va < self.end
    }
}

/// The analysis result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeArmor {
    /// Functions sorted by entry address.
    pub functions: Vec<Function>,
    /// Over-estimated argument counts per indirect call site.
    pub prepared: BTreeMap<u64, u8>,
}

impl TypeArmor {
    /// Index of the function containing `va`.
    pub fn function_of(&self, va: u64) -> Option<usize> {
        match self.functions.binary_search_by_key(&va, |f| f.entry) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => self.functions[i - 1].contains(va).then_some(i - 1),
        }
    }

    /// The function entry exactly at `va`, if any.
    pub fn entry_at(&self, va: u64) -> Option<&Function> {
        self.functions.binary_search_by_key(&va, |f| f.entry).ok().map(|i| &self.functions[i])
    }

    /// Whether the TypeArmor policy admits the indirect call edge
    /// `callsite → entry`.
    ///
    /// Unknown call sites or targets are admitted (conservative).
    pub fn admits(&self, callsite: u64, entry: u64) -> bool {
        let Some(&prepared) = self.prepared.get(&callsite) else { return true };
        let Some(f) = self.entry_at(entry) else { return true };
        prepared >= f.consumed_args
    }
}

/// Which argument registers an instruction reads / writes.
fn arg_reads_writes(insn: &Insn) -> (Vec<Reg>, Option<Reg>) {
    let mut reads = Vec::new();
    let mut write = None;
    match *insn {
        Insn::Mov { rd, rs } => {
            reads.push(rs);
            write = Some(rd);
        }
        Insn::MovImm { rd, .. } | Insn::Pop { rd } => write = Some(rd),
        Insn::Alu { rd, rs, .. } => {
            reads.push(rd);
            reads.push(rs);
            write = Some(rd);
        }
        Insn::AluImm { rd, .. } => {
            reads.push(rd);
            write = Some(rd);
        }
        Insn::Cmp { rs1, rs2 } => {
            reads.push(rs1);
            reads.push(rs2);
        }
        Insn::CmpImm { rs, .. }
        | Insn::Push { rs }
        | Insn::JmpInd { rs }
        | Insn::CallInd { rs } => reads.push(rs),
        Insn::Load { rd, base, .. } => {
            reads.push(base);
            write = Some(rd);
        }
        Insn::Store { rs, base, .. } => {
            reads.push(rs);
            reads.push(base);
        }
        _ => {}
    }
    (reads, write)
}

fn arg_index(r: Reg) -> Option<u8> {
    let i = r.index() as u8;
    (1..=ARG_REGS).contains(&i).then(|| i - 1)
}

/// Runs the analysis over a disassembled image.
pub fn analyze(image: &Image, disasm: &Disassembly) -> TypeArmor {
    // Function entries: exports, direct call targets, address-taken code.
    let mut entries: Vec<(u64, usize)> = Vec::new();
    for (mi, m) in image.modules().iter().enumerate() {
        for (_, va) in &m.exports {
            if m.contains_code(*va) {
                entries.push((*va, mi));
            }
        }
    }
    for b in &disasm.blocks {
        if let crate::bb::BlockEnd::Terminator(Insn::Call { target }) = b.term {
            if let Some(m) = image.modules().iter().position(|m| m.contains_code(target)) {
                entries.push((target, m));
            }
        }
    }
    for &va in &disasm.address_taken {
        if let Some(m) = image.modules().iter().position(|m| m.contains_code(va)) {
            entries.push((va, m));
        }
    }
    entries.sort_unstable();
    entries.dedup();

    // Extents: up to the next entry in the same module, else module end.
    let mut functions = Vec::with_capacity(entries.len());
    for (i, &(entry, mi)) in entries.iter().enumerate() {
        let module_end = image.modules()[mi].exec_end;
        let end = entries.get(i + 1).filter(|&&(_, nmi)| nmi == mi).map_or(module_end, |&(e, _)| e);
        functions.push(Function { entry, end, module: mi, consumed_args: 0 });
    }

    // consumed(f): reads-before-writes on the straight-line prefix.
    for f in &mut functions {
        let mut written = [false; ARG_REGS as usize];
        let mut consumed = [false; ARG_REGS as usize];
        let mut va = f.entry;
        while va < f.end {
            let Some(insn) = image.insn_at(va) else { break };
            let (reads, write) = arg_reads_writes(&insn);
            for r in reads {
                if let Some(i) = arg_index(r) {
                    if !written[i as usize] {
                        consumed[i as usize] = true;
                    }
                }
            }
            if let Some(w) = write {
                if let Some(i) = arg_index(w) {
                    written[i as usize] = true;
                }
            }
            if insn.is_terminator() {
                break; // only guaranteed-to-execute instructions
            }
            va += INSN_SIZE;
        }
        f.consumed_args = consumed.iter().filter(|&&c| c).count() as u8;
    }

    // prepared(c): writes anywhere in the function before the call site.
    let functions_ro = functions.clone();
    let ta_probe = TypeArmor { functions: functions_ro, prepared: BTreeMap::new() };
    let mut prepared = BTreeMap::new();
    for b in &disasm.blocks {
        let crate::bb::BlockEnd::Terminator(Insn::CallInd { .. }) = b.term else { continue };
        let callsite = b.last_insn();
        let scan_start =
            ta_probe.function_of(callsite).map_or(b.start, |i| ta_probe.functions[i].entry);
        let mut written = [false; ARG_REGS as usize];
        let mut va = scan_start;
        while va < callsite {
            if let Some(insn) = image.insn_at(va) {
                let (_, write) = arg_reads_writes(&insn);
                if let Some(w) = write {
                    if let Some(i) = arg_index(w) {
                        written[i as usize] = true;
                    }
                }
            }
            va += INSN_SIZE;
        }
        prepared.insert(callsite, written.iter().filter(|&&w| w).count() as u8);
    }

    TypeArmor { functions, prepared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::disassemble;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;
    use fg_isa::insn::regs::*;

    /// Two address-taken functions with different arities and one indirect
    /// call site that prepares a single argument.
    fn image() -> Image {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.movi(R1, 7); // prepare one argument
        a.lea(R6, "table");
        a.ld(R7, R6, 0);
        a.calli(R7);
        a.halt();
        // one-arg function: reads r1 before writing it.
        a.label("one_arg");
        a.mov(R8, R1);
        a.ret();
        // three-arg function: reads r1, r2, r3.
        a.label("three_args");
        a.mov(R8, R1);
        a.add(R8, R2);
        a.add(R8, R3);
        a.ret();
        // zero-arg function.
        a.label("zero_args");
        a.movi(R8, 1);
        a.ret();
        a.data_ptrs("table", &["one_arg", "three_args", "zero_args"]);
        Linker::new(a.finish().unwrap()).link().unwrap()
    }

    fn analyzed() -> (Image, TypeArmor) {
        let img = image();
        let d = disassemble(&img);
        let ta = analyze(&img, &d);
        (img, ta)
    }

    #[test]
    fn consumed_args_computed() {
        let (img, ta) = analyzed();
        let main = img.symbol("main").unwrap();
        let one = ta.entry_at(main + 5 * INSN_SIZE).expect("one_arg is a function");
        assert_eq!(one.consumed_args, 1);
        let three = ta.entry_at(main + 7 * INSN_SIZE).expect("three_args");
        assert_eq!(three.consumed_args, 3);
        let zero = ta.entry_at(main + 11 * INSN_SIZE).expect("zero_args");
        assert_eq!(zero.consumed_args, 0);
    }

    #[test]
    fn prepared_args_computed() {
        let (img, ta) = analyzed();
        let callsite = img.symbol("main").unwrap() + 3 * INSN_SIZE;
        assert_eq!(ta.prepared.get(&callsite), Some(&1));
    }

    #[test]
    fn policy_admits_by_arity() {
        let (img, ta) = analyzed();
        let main = img.symbol("main").unwrap();
        let callsite = main + 3 * INSN_SIZE;
        assert!(ta.admits(callsite, main + 5 * INSN_SIZE), "1 prepared ≥ 1 consumed");
        assert!(ta.admits(callsite, main + 11 * INSN_SIZE), "1 prepared ≥ 0 consumed");
        assert!(!ta.admits(callsite, main + 7 * INSN_SIZE), "1 prepared < 3 consumed");
    }

    #[test]
    fn unknown_sites_admitted_conservatively() {
        let (_, ta) = analyzed();
        assert!(ta.admits(0xdead_0000, 0xbeef_0000));
    }

    #[test]
    fn function_of_maps_interior_addresses() {
        let (img, ta) = analyzed();
        let main = img.symbol("main").unwrap();
        let fi = ta.function_of(main + INSN_SIZE).unwrap();
        assert_eq!(ta.functions[fi].entry, main);
        assert!(ta.function_of(0x10).is_none());
    }

    #[test]
    fn functions_sorted_disjoint() {
        let (_, ta) = analyzed();
        for w in ta.functions.windows(2) {
            assert!(w[0].entry < w[1].entry);
            if w[0].module == w[1].module {
                assert!(w[0].end <= w[1].entry);
            }
        }
    }
}
