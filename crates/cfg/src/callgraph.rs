//! The interprocedural call graph and whole-image reachability.
//!
//! The audit pass (see the `fg-audit` crate) needs to answer one question
//! the per-block O-CFG cannot answer directly: *which code can a deployed
//! process ever execute?* A protected process has exactly one way in — the
//! image entry point — so anything the call graph cannot reach from there is
//! dead weight: its basic blocks inflate the artifact, and any ITC-CFG edge
//! rooted in it widens the attack surface for no benign execution's benefit.
//!
//! Two granularities are provided:
//!
//! * [`CallGraph`] — functions (from the TypeArmor function discovery) as
//!   nodes, with direct calls, indirect calls, and cross-function tail jumps
//!   as edges; reachability is a BFS from the function containing the entry
//!   point.
//! * [`reachable_blocks`] — basic-block-level closure over the O-CFG
//!   successor sets from the entry block. This is the *over*-approximation
//!   the pruning pass relies on: every successor set in the O-CFG is
//!   conservative, so a block this BFS cannot reach is genuinely
//!   unreachable in any benign execution.

use crate::ocfg::OCfg;
use fg_isa::image::Image;
use std::collections::{BTreeSet, VecDeque};

/// The function-level interprocedural call graph.
///
/// Nodes are the TypeArmor-discovered functions; edges are call-site
/// relations: direct calls, every target of an indirect call site, and tail
/// jumps that cross a function boundary (the callee inherits the caller's
/// continuation, exactly as the O-CFG's call/return matching models it).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Function entry addresses, sorted (parallel to the TypeArmor function
    /// table the graph was built from).
    pub entries: Vec<u64>,
    /// Per-function callee indices, sorted and deduplicated.
    pub callees: Vec<Vec<usize>>,
    /// Root functions: the one containing the image entry point.
    pub roots: Vec<usize>,
}

impl CallGraph {
    /// Builds the call graph for a linked image from its O-CFG.
    pub fn build(image: &Image, ocfg: &OCfg) -> CallGraph {
        let funcs = &ocfg.typearmor.functions;
        let entries: Vec<u64> = funcs.iter().map(|f| f.entry).collect();
        let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); funcs.len()];

        for (bi, block) in ocfg.disasm.blocks.iter().enumerate() {
            let Some(caller) = ocfg.typearmor.function_of(block.start) else {
                continue;
            };
            for &target in ocfg.succs[bi].targets() {
                let Some(callee) = ocfg.typearmor.function_of(target) else {
                    continue;
                };
                // Intra-function direct flow is not a call-graph edge; a
                // cross-function successor — direct call, indirect call,
                // resolved PLT jump, or tail jump — is.
                if callee != caller {
                    callees[caller].insert(callee);
                }
            }
        }

        let roots = ocfg.typearmor.function_of(image.entry()).into_iter().collect();
        CallGraph { entries, callees: callees.into_iter().map(Vec::from_iter).collect(), roots }
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of call edges.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Per-function reachability from the roots (BFS).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.entries.len()];
        let mut queue: VecDeque<usize> = self.roots.iter().copied().collect();
        for &r in &self.roots {
            seen[r] = true;
        }
        while let Some(f) = queue.pop_front() {
            for &c in &self.callees[f] {
                if !seen[c] {
                    seen[c] = true;
                    queue.push_back(c);
                }
            }
        }
        seen
    }
}

/// Basic-block-level reachability: the closure of the O-CFG successor
/// relation from the entry block.
///
/// The successor sets are conservative (indirect sets cover the full
/// address-taken universe the site could reach), so the result
/// over-approximates every benign execution: a `false` entry is proof the
/// block never runs. Continuations after calls are reached through the
/// callee's return-successor set, so code after a call into a non-returning
/// function is correctly classified unreachable.
pub fn reachable_blocks(image: &Image, ocfg: &OCfg) -> Vec<bool> {
    let mut seen = vec![false; ocfg.disasm.blocks.len()];
    let Some(entry) = ocfg.disasm.block_at(image.entry()) else {
        return seen;
    };
    let mut queue = VecDeque::from([entry]);
    seen[entry] = true;
    while let Some(bi) = queue.pop_front() {
        for &t in ocfg.succs[bi].targets() {
            if let Some(ti) = ocfg.disasm.block_at(t) {
                if !seen[ti] {
                    seen[ti] = true;
                    queue.push_back(ti);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;
    use fg_isa::insn::regs::{R1, R2};

    /// An executable with a dispatched handler, a directly-called helper,
    /// and a function no path references at all.
    fn image_with_dead_code() -> Image {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.call("helper");
        a.lea(R1, "table");
        a.ld(R2, R1, 0);
        a.calli(R2);
        a.halt();
        a.label("helper");
        a.ret();
        a.label("handler");
        a.ret();
        a.label("orphan");
        a.movi(R1, 9);
        a.ret();
        a.data_ptrs("table", &["handler"]);
        Linker::new(a.finish().unwrap()).link().unwrap()
    }

    #[test]
    fn call_graph_reaches_called_and_dispatched_code() {
        let image = image_with_dead_code();
        let ocfg = OCfg::build(&image);
        let cg = CallGraph::build(&image, &ocfg);
        assert!(cg.function_count() >= 3, "main, helper, handler discovered");
        assert_eq!(cg.roots.len(), 1);
        let reach = cg.reachable();
        let reachable_entries: Vec<u64> =
            cg.entries.iter().zip(&reach).filter(|&(_, &r)| r).map(|(&e, _)| e).collect();
        let main_entry = image.symbol("main").unwrap();
        assert!(reachable_entries.contains(&main_entry));
        assert!(reach.iter().filter(|&&r| r).count() >= 3, "main, helper, handler reachable");
    }

    #[test]
    fn unreferenced_function_is_unreachable() {
        let image = image_with_dead_code();
        let ocfg = OCfg::build(&image);
        let blocks = reachable_blocks(&image, &ocfg);
        assert!(blocks.iter().any(|&r| r), "entry reachable");
        assert!(
            blocks.iter().any(|&r| !r),
            "the orphan function must be unreachable from the entry point"
        );
        // The handler (only reachable through the dispatch table) IS
        // reachable: indirect successor sets are part of the closure.
        let handler_block = ocfg.disasm.blocks.iter().position(|b| {
            ocfg.disasm.address_taken.contains(&b.start)
                && blocks[ocfg.disasm.block_at(b.start).unwrap()]
        });
        assert!(handler_block.is_some(), "address-taken handler reachable via dispatch");
    }

    #[test]
    fn whole_workload_mostly_reachable() {
        let w = fg_workloads::nginx_patched();
        let ocfg = OCfg::build(&w.image);
        let blocks = reachable_blocks(&w.image, &ocfg);
        let frac = blocks.iter().filter(|&&r| r).count() as f64 / blocks.len().max(1) as f64;
        assert!(frac > 0.5, "most of a real workload is live ({frac:.2})");
        let cg = CallGraph::build(&w.image, &ocfg);
        assert!(cg.edge_count() > 0);
        let freach = cg.reachable();
        assert!(freach.iter().any(|&r| r));
    }
}
