//! The Indirect-Targets-Connected CFG (ITC-CFG) of §4.2, with the credit
//! and TNT labels of §4.3.
//!
//! Construction collapses all direct edges: the nodes are the *indirect
//! target basic blocks* (IT-BBs — blocks targeted by at least one indirect
//! edge), and there is an edge `X → Y` iff execution can flow from `X`'s
//! entry along **direct edges only** until an indirect branch whose target
//! set contains `Y`. Consequently, for any two consecutive TIP packets the
//! pair of target addresses must be an ITC-CFG edge — the soundness theorem
//! the paper proves by reduction at the end of §4.2.
//!
//! The runtime representation mirrors §5.3: a sorted array of source nodes,
//! each holding a count and a pointer into a sorted target array, searched
//! by binary search.

use crate::ocfg::OCfg;
use fg_ipt::packet::TntSeq;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Credit level of an edge (binary labeling, §4.3: "each edge is either
/// with a high credit or a low one").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Credit {
    /// Never observed during training.
    #[default]
    Low,
    /// Observed during fuzzing training (or cached from a negative slow-path
    /// result).
    High,
}

/// A compact TNT signature: the conditional-branch outcomes observed along
/// one direct path realising an ITC edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TntSig {
    bits: u64,
    len: u8,
}

impl TntSig {
    /// Maximum representable signature length.
    pub const MAX_LEN: usize = 64;

    /// Builds a signature from outcomes (oldest first). Returns `None` when
    /// the run is too long to represent (the edge is then marked
    /// wildcard).
    pub fn from_bools(outcomes: &[bool]) -> Option<TntSig> {
        if outcomes.len() > TntSig::MAX_LEN {
            return None;
        }
        let mut bits = 0u64;
        for &b in outcomes {
            bits = (bits << 1) | b as u64;
        }
        Some(TntSig { bits, len: outcomes.len() as u8 })
    }

    /// Builds a signature from a decoded TNT sequence.
    pub fn from_seq(seq: &TntSeq) -> TntSig {
        TntSig { bits: seq.raw_bits(), len: seq.len() }
    }

    /// Builds a signature directly from the packed `(bits, len)` word a
    /// [`fg_ipt::FastScan`] stores — the allocation-free fast-path route.
    /// The encoding is identical (oldest outcome in the highest populated
    /// bit); stray bits above `len` are masked off.
    pub fn from_raw(bits: u64, len: u8) -> Option<TntSig> {
        if len as usize > TntSig::MAX_LEN {
            return None;
        }
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        Some(TntSig { bits: bits & mask, len })
    }

    /// Signature length in bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the signature is empty (no conditional branches on the path).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The TNT information attached to one edge.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TntInfo {
    /// Accept any TNT run (signature set overflowed or run unrepresentable).
    pub any: bool,
    /// Accepted signatures.
    pub sigs: Vec<TntSig>,
}

impl TntInfo {
    /// Cap on stored signatures before degrading to wildcard.
    pub const MAX_SIGS: usize = 32;

    /// Whether any TNT information was recorded.
    pub fn is_trained(&self) -> bool {
        self.any || !self.sigs.is_empty()
    }

    /// Whether an observed TNT run is admitted.
    ///
    /// Untrained info admits everything (the TNT check only *adds*
    /// precision, §4.3); trained info requires a signature match.
    pub fn admits(&self, observed: &[bool]) -> bool {
        if !self.is_trained() || self.any {
            return true;
        }
        match TntSig::from_bools(observed) {
            Some(sig) => self.sigs.contains(&sig),
            None => false,
        }
    }

    /// [`TntInfo::admits`] over the packed `(bits, len)` word of a
    /// [`fg_ipt::FastScan`] TNT run; `None` means the observed run exceeded
    /// 64 bits, which only a wildcard edge admits.
    pub fn admits_raw(&self, observed: Option<(u64, u8)>) -> bool {
        if !self.is_trained() || self.any {
            return true;
        }
        match observed {
            Some((bits, len)) => {
                TntSig::from_raw(bits, len).is_some_and(|sig| self.sigs.contains(&sig))
            }
            None => false,
        }
    }

    fn add(&mut self, outcomes: &[bool]) {
        if self.any {
            return;
        }
        match TntSig::from_bools(outcomes) {
            Some(sig) => {
                if !self.sigs.contains(&sig) {
                    if self.sigs.len() >= TntInfo::MAX_SIGS {
                        self.any = true;
                        self.sigs.clear();
                    } else {
                        self.sigs.push(sig);
                    }
                }
            }
            None => {
                self.any = true;
                self.sigs.clear();
            }
        }
    }
}

/// Index of an edge inside the flattened target array.
pub type EdgeIdx = usize;

/// Dense node id: position of an IT-BB address in the sorted node array.
pub type NodeId = u32;

/// Open-addressing hash index from IT-BB address to dense [`NodeId`] — the
/// O(1) interning probe replacing the per-lookup binary search on the hot
/// path. Slot values are `node_id + 1` (0 = empty); power-of-two capacity
/// at ≤ 50% load keeps probe chains short.
///
/// The index is redundant with `node_addrs` (it is rebuilt by every
/// constructor and skipped by serde); lookups fall back to binary search
/// when it is absent, so a deserialized graph stays correct before
/// [`ItcCfg::reindex`] runs.
#[derive(Debug, Clone, Default)]
struct NodeIndex {
    slots: Vec<u32>,
    mask: usize,
}

impl NodeIndex {
    fn build(addrs: &[u64]) -> NodeIndex {
        if addrs.is_empty() {
            return NodeIndex::default();
        }
        let cap = (addrs.len() * 2).next_power_of_two();
        let mut idx = NodeIndex { slots: vec![0; cap], mask: cap - 1 };
        for (i, &a) in addrs.iter().enumerate() {
            let mut s = NodeIndex::hash(a) & idx.mask;
            while idx.slots[s] != 0 {
                s = (s + 1) & idx.mask;
            }
            idx.slots[s] = i as u32 + 1;
        }
        idx
    }

    /// Fibonacci (multiplicative) hashing: addresses are page-aligned-ish
    /// and clustered, which pure masking would collide badly on.
    #[inline]
    fn hash(a: u64) -> usize {
        (a.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize
    }

    /// Looks up `a`, given the address array the index was built over.
    #[inline]
    fn lookup(&self, addrs: &[u64], a: u64) -> Option<NodeId> {
        let mut s = NodeIndex::hash(a) & self.mask;
        loop {
            match self.slots[s] {
                0 => return None,
                v => {
                    if addrs[(v - 1) as usize] == a {
                        return Some(v - 1);
                    }
                }
            }
            s = (s + 1) & self.mask;
        }
    }
}

/// Borrowed raw arrays of an [`ItcCfg`] (see [`ItcCfg::raw_view`]).
#[derive(Debug, Clone, Copy)]
pub struct ItcRawView<'a> {
    /// Sorted IT-BB entry addresses.
    pub node_addrs: &'a [u64],
    /// Per node: `(start, len)` into `targets`.
    pub ranges: &'a [(u32, u32)],
    /// Flattened, per-node-sorted target addresses.
    pub targets: &'a [u64],
    /// Per-edge credit labels.
    pub credits: &'a [Credit],
    /// Per-edge TNT information.
    pub tnt: &'a [TntInfo],
}

/// The indirect-targets-connected CFG with per-edge credits and TNT labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ItcCfg {
    /// Sorted IT-BB entry addresses (source nodes).
    node_addrs: Vec<u64>,
    /// Per node: `(start, len)` into `targets`.
    ranges: Vec<(u32, u32)>,
    /// Flattened, per-node-sorted target addresses.
    targets: Vec<u64>,
    /// Per-edge credit labels.
    credits: Vec<Credit>,
    /// Per-edge TNT information.
    tnt: Vec<TntInfo>,
    /// Trained 2-grams of consecutive high-credit edges — the paper's
    /// future-work "matching the high-credit paths" (§7.1.2). Sorted for
    /// binary search; empty unless path training ran. (Serde-compatible
    /// with the former `BTreeSet`, which serializes as a sorted sequence.)
    #[serde(default)]
    path_grams: Vec<(u64, u64)>,
    /// Address → dense node id hash index (rebuilt, never serialized).
    #[serde(skip)]
    index: NodeIndex,
}

impl ItcCfg {
    /// Builds the ITC-CFG from a conservative O-CFG.
    pub fn build(ocfg: &OCfg) -> ItcCfg {
        // 1. IT-BBs: every target of an indirect successor set.
        let mut it_bbs: BTreeSet<u64> = BTreeSet::new();
        for s in &ocfg.succs {
            if s.is_indirect() {
                it_bbs.extend(s.targets().iter().copied());
            }
        }

        // 2. For each IT-BB, follow direct edges to the nearest indirect
        //    branches and connect to their targets.
        let mut adj: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for &src in &it_bbs {
            let out = adj.entry(src).or_default();
            let Some(start_block) = ocfg.disasm.block_at(src) else { continue };
            let mut seen = vec![false; ocfg.disasm.blocks.len()];
            let mut queue = VecDeque::new();
            seen[start_block] = true;
            queue.push_back(start_block);
            while let Some(bi) = queue.pop_front() {
                let succ = &ocfg.succs[bi];
                if succ.is_indirect() {
                    out.extend(succ.targets().iter().copied());
                    continue; // never traverse *through* an indirect edge
                }
                for &t in succ.targets() {
                    if let Some(ti) = ocfg.disasm.block_at(t) {
                        if !seen[ti] {
                            seen[ti] = true;
                            queue.push_back(ti);
                        }
                    }
                }
            }
        }

        // 3. Flatten into the sorted-arrays runtime representation.
        let mut node_addrs = Vec::with_capacity(it_bbs.len());
        let mut ranges = Vec::with_capacity(it_bbs.len());
        let mut targets = Vec::new();
        for &src in &it_bbs {
            let ts = adj.get(&src);
            let start = targets.len() as u32;
            if let Some(ts) = ts {
                targets.extend(ts.iter().copied()); // BTreeSet → sorted
            }
            node_addrs.push(src);
            ranges.push((start, targets.len() as u32 - start));
        }
        let n_edges = targets.len();
        let index = NodeIndex::build(&node_addrs);
        ItcCfg {
            node_addrs,
            ranges,
            targets,
            credits: vec![Credit::Low; n_edges],
            tnt: vec![TntInfo::default(); n_edges],
            path_grams: Vec::new(),
            index,
        }
    }

    /// Borrowed view of the runtime arrays, for external validators that
    /// must inspect the raw representation (sortedness, range bounds, label
    /// arity) without trusting the accessor invariants.
    pub fn raw_view(&self) -> ItcRawView<'_> {
        ItcRawView {
            node_addrs: &self.node_addrs,
            ranges: &self.ranges,
            targets: &self.targets,
            credits: &self.credits,
            tnt: &self.tnt,
        }
    }

    /// Reassembles an ITC-CFG from raw runtime arrays **without any
    /// validation** — intended for artifact tooling and for mutation-style
    /// tests that deliberately construct ill-formed graphs. Run the
    /// `fg-verify` checker over the result before trusting it.
    pub fn from_raw_parts(
        node_addrs: Vec<u64>,
        ranges: Vec<(u32, u32)>,
        targets: Vec<u64>,
        credits: Vec<Credit>,
        tnt: Vec<TntInfo>,
    ) -> ItcCfg {
        let index = NodeIndex::build(&node_addrs);
        ItcCfg { node_addrs, ranges, targets, credits, tnt, path_grams: Vec::new(), index }
    }

    /// Rebuilds the address→id hash index after deserialization (serde
    /// skips it). Lookups are correct without this — they fall back to
    /// binary search — but not O(1).
    pub fn reindex(&mut self) {
        self.index = NodeIndex::build(&self.node_addrs);
        debug_assert!(self.path_grams.windows(2).all(|w| w[0] < w[1]), "path grams sorted");
    }

    /// Number of IT-BB nodes (`|V|` of Table 4).
    pub fn node_count(&self) -> usize {
        self.node_addrs.len()
    }

    /// Number of edges (`|E|` of Table 4).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Interns an address to its dense node id: one O(1) hash probe, with a
    /// binary-search fallback when the index is absent (deserialized graph
    /// before [`ItcCfg::reindex`]).
    #[inline]
    pub fn node_id(&self, va: u64) -> Option<NodeId> {
        if self.index.slots.is_empty() {
            return self.node_addrs.binary_search(&va).ok().map(|i| i as NodeId);
        }
        self.index.lookup(&self.node_addrs, va)
    }

    /// The address of a dense node id.
    pub fn node_addr(&self, id: NodeId) -> u64 {
        self.node_addrs[id as usize]
    }

    /// Whether `va` is an IT-BB entry (one hash probe — the first of the
    /// two fast-path checks of §5.3).
    #[inline]
    pub fn is_node(&self, va: u64) -> bool {
        self.node_id(va).is_some()
    }

    /// Looks up the edge `from → to` (the second fast-path check): O(1)
    /// source interning, then binary search within the CSR target slice —
    /// O(log deg) total.
    #[inline]
    pub fn edge(&self, from: u64, to: u64) -> Option<EdgeIdx> {
        let ni = self.node_id(from)? as usize;
        let (start, len) = self.ranges[ni];
        let range = &self.targets[start as usize..(start + len) as usize];
        let off = range.binary_search(&to).ok()?;
        Some(start as usize + off)
    }

    /// All outgoing targets of a node.
    pub fn targets_of(&self, from: u64) -> &[u64] {
        match self.node_id(from) {
            Some(ni) => {
                let (start, len) = self.ranges[ni as usize];
                &self.targets[start as usize..(start + len) as usize]
            }
            None => &[],
        }
    }

    /// Iterates `(from, to, edge_idx)` over all edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u64, u64, EdgeIdx)> + '_ {
        self.node_addrs.iter().zip(&self.ranges).flat_map(move |(&from, &(start, len))| {
            (start..start + len).map(move |i| (from, self.targets[i as usize], i as usize))
        })
    }

    /// The credit of an edge.
    pub fn credit(&self, e: EdgeIdx) -> Credit {
        self.credits[e]
    }

    /// Labels an edge high-credit (training, or slow-path result caching).
    pub fn set_high(&mut self, e: EdgeIdx) {
        self.credits[e] = Credit::High;
    }

    /// The TNT info of an edge.
    pub fn tnt(&self, e: EdgeIdx) -> &TntInfo {
        &self.tnt[e]
    }

    /// Records an observed TNT run for an edge (training).
    pub fn add_tnt(&mut self, e: EdgeIdx, outcomes: &[bool]) {
        self.tnt[e].add(outcomes);
    }

    /// Records that edge `e2` was observed immediately after edge `e1`
    /// during training (path-gram learning). Sorted insertion keeps
    /// [`ItcCfg::has_path_gram`] a binary search.
    pub fn add_path_gram(&mut self, e1: EdgeIdx, e2: EdgeIdx) {
        let key = (e1 as u64, e2 as u64);
        if let Err(pos) = self.path_grams.binary_search(&key) {
            self.path_grams.insert(pos, key);
        }
    }

    /// Whether the consecutive edge pair was seen in training (O(log n)).
    #[inline]
    pub fn has_path_gram(&self, e1: EdgeIdx, e2: EdgeIdx) -> bool {
        self.path_grams.binary_search(&(e1 as u64, e2 as u64)).is_ok()
    }

    /// Number of trained path grams.
    pub fn path_gram_count(&self) -> usize {
        self.path_grams.len()
    }

    /// Fraction of edges labeled high-credit.
    pub fn high_credit_fraction(&self) -> f64 {
        if self.credits.is_empty() {
            return 0.0;
        }
        self.credits.iter().filter(|&&c| c == Credit::High).count() as f64
            / self.credits.len() as f64
    }

    /// Approximate resident size of the runtime structure, for Table 5.
    pub fn memory_bytes(&self) -> usize {
        self.node_addrs.len() * 8
            + self.ranges.len() * 8
            + self.targets.len() * 8
            + self.credits.len()
            + self.index.slots.len() * 4
            + self.path_grams.len() * 16
            + self
                .tnt
                .iter()
                .map(|t| {
                    std::mem::size_of::<TntInfo>() + t.sigs.len() * std::mem::size_of::<TntSig>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_isa::asm::Asm;
    use fg_isa::image::{Image, Linker};
    use fg_isa::insn::regs::*;
    use fg_isa::insn::{Cond, INSN_SIZE};

    /// main calls h1 indirectly; h1 returns; main calls h2 indirectly; h2
    /// returns; halt. Plus a direct-only diamond between the calls.
    fn image() -> Image {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.lea(R6, "table"); // 0
        a.ld(R7, R6, 0); // 1
        a.calli(R7); // 2  TIP → h1
        a.label("mid"); // 3  (ret target of h1 — IT-BB)
        a.cmpi(R1, 0); // 3
        a.jcc(Cond::Gt, "left"); // 4
        a.nop(); // 5
        a.jmp("join"); // 6
        a.label("left"); // 7
        a.nop(); // 7
        a.label("join"); // 8
        a.ld(R7, R6, 8); // 8
        a.calli(R7); // 9  TIP → h2
        a.halt(); // 10 (ret target of h2 — IT-BB)
        a.label("h1"); // 11
        a.movi(R1, 1); // 11
        a.ret(); // 12 TIP → mid
        a.label("h2"); // 13
        a.movi(R2, 2); // 13
        a.ret(); // 14 TIP → halt block
        a.data_ptrs("table", &["h1", "h2"]);
        Linker::new(a.finish().unwrap()).link().unwrap()
    }

    fn itc() -> (Image, OCfg, ItcCfg) {
        let img = image();
        let ocfg = OCfg::build(&img);
        let itc = ItcCfg::build(&ocfg);
        (img, ocfg, itc)
    }

    #[test]
    fn it_bbs_are_indirect_targets_only() {
        let (img, _, itc) = itc();
        let main = img.symbol("main").unwrap();
        // IT-BBs: h1, h2 (call targets), mid, halt-block (ret targets).
        assert!(itc.is_node(main + 11 * INSN_SIZE), "h1");
        assert!(itc.is_node(main + 13 * INSN_SIZE), "h2");
        assert!(itc.is_node(main + 3 * INSN_SIZE), "mid (return target)");
        assert!(itc.is_node(main + 10 * INSN_SIZE), "halt block (return target)");
        // Direct-only blocks are not nodes.
        assert!(!itc.is_node(main), "entry is not an indirect target");
        assert!(!itc.is_node(main + 7 * INSN_SIZE), "left is direct-only");
    }

    #[test]
    fn edges_follow_nearest_indirect_rule() {
        let (img, _, itc) = itc();
        let main = img.symbol("main").unwrap();
        let (mid, h1, h2) = (main + 3 * INSN_SIZE, main + 11 * INSN_SIZE, main + 13 * INSN_SIZE);
        // From mid, through the diamond (direct only), to the second calli →
        // h1 and h2 (the conservative target set includes both).
        assert!(itc.edge(mid, h2).is_some(), "mid → h2");
        assert!(itc.edge(mid, h1).is_some(), "conservative set includes h1");
        // From h1: its ret targets mid and the halt block (conservative
        // call/ret matching: both call sites call either handler).
        assert!(itc.edge(h1, mid).is_some(), "h1 ret → mid");
        // No edge from mid to itself (no indirect path back).
        assert!(itc.edge(mid, mid).is_none());
    }

    #[test]
    fn no_edge_without_intervening_indirect_branch() {
        let (img, _, itc) = itc();
        let main = img.symbol("main").unwrap();
        // halt block is an IT-BB but has no outgoing edges (halt terminates).
        let halt_bb = main + 10 * INSN_SIZE;
        assert!(itc.is_node(halt_bb));
        assert!(itc.targets_of(halt_bb).is_empty());
    }

    #[test]
    fn runtime_trace_is_walk_on_itc() {
        // Soundness: execute the program with IPT, and check every
        // consecutive TIP pair is an ITC edge (the §4.2 theorem).
        let (img, _, itc) = itc();
        let mut m = fg_cpu::Machine::new(&img, 0x3000);
        let mut unit =
            fg_cpu::IptUnit::flowguard(0x3000, fg_ipt::Topa::two_regions(65536).unwrap());
        unit.start(img.entry(), 0x3000);
        m.trace = fg_cpu::TraceUnit::Ipt(unit);
        assert_eq!(m.run(&mut fg_cpu::NullKernel, 10_000), fg_cpu::StopReason::Halted);
        m.trace.as_ipt_mut().unwrap().flush();
        let bytes = m.trace.as_ipt().unwrap().trace_bytes();
        let scan = fg_ipt::fast::scan(&bytes).unwrap();
        assert!(scan.tip_count() >= 4);
        for w in scan.tip_ips().windows(2) {
            assert!(itc.is_node(w[0]), "TIP target {:#x} is an IT-BB", w[0]);
            assert!(
                itc.edge(w[0], w[1]).is_some(),
                "consecutive TIPs {:#x} → {:#x} must be an ITC edge",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn credits_default_low_and_can_be_raised() {
        let (_, _, mut itc) = itc();
        assert_eq!(itc.high_credit_fraction(), 0.0);
        let (_, _, e) = itc.iter_edges().next().unwrap();
        itc.set_high(e);
        assert_eq!(itc.credit(e), Credit::High);
        assert!(itc.high_credit_fraction() > 0.0);
    }

    #[test]
    fn tnt_info_training_and_admission() {
        let (_, _, mut itc) = itc();
        let (_, _, e) = itc.iter_edges().next().unwrap();
        assert!(itc.tnt(e).admits(&[true, false]), "untrained admits anything");
        itc.add_tnt(e, &[true, false]);
        assert!(itc.tnt(e).is_trained());
        assert!(itc.tnt(e).admits(&[true, false]));
        assert!(!itc.tnt(e).admits(&[false, true]), "trained rejects unseen runs");
        assert!(!itc.tnt(e).admits(&[]), "empty run differs from TN");
    }

    #[test]
    fn tnt_overflow_degrades_to_wildcard() {
        let mut info = TntInfo::default();
        let long = vec![true; TntSig::MAX_LEN + 1];
        info.add(&long);
        assert!(info.any);
        assert!(info.admits(&[false]));
        // Sig-count overflow path.
        let mut info2 = TntInfo::default();
        for i in 0..=TntInfo::MAX_SIGS {
            let mut run = vec![false; 10];
            run[i % 10] = i % 2 == 0;
            run.push(i % 3 == 0);
            // unique-ish runs
            let bits: Vec<bool> = run.iter().copied().chain([i % 2 == 1]).collect();
            info2.add(&bits[..((i % 10) + 2)]);
        }
        // Either many sigs stored or degraded; both admit a trained run.
        assert!(info2.is_trained());
    }

    #[test]
    fn sig_roundtrip_and_bounds() {
        let sig = TntSig::from_bools(&[true, false, true]).unwrap();
        assert_eq!(sig.len(), 3);
        assert!(!sig.is_empty());
        assert!(TntSig::from_bools(&[true; 65]).is_none());
        let seq = TntSeq::from_slice(&[true, false, true]);
        assert_eq!(TntSig::from_seq(&seq), sig);
    }

    #[test]
    fn node_interning_matches_binary_search() {
        let (_, _, itc) = itc();
        let view = itc.raw_view();
        // Every node address interns to its sorted-array position; probing
        // near-miss addresses finds nothing.
        for (i, &a) in view.node_addrs.iter().enumerate() {
            assert_eq!(itc.node_id(a), Some(i as NodeId));
            assert_eq!(itc.node_addr(i as NodeId), a);
            assert_eq!(
                itc.node_id(a + 1),
                view.node_addrs.binary_search(&(a + 1)).ok().map(|x| x as NodeId)
            );
        }
        assert_eq!(itc.node_id(0xdead_beef), None);
    }

    #[test]
    fn reindex_after_deserialize_preserves_lookups() {
        let (_, _, mut itc) = itc();
        let (f, t, e) = itc.iter_edges().next().unwrap();
        itc.set_high(e);
        let json = serde_json::to_string(&itc).unwrap();
        let mut back: ItcCfg = serde_json::from_str(&json).unwrap();
        // Index is skipped by serde: the fallback still answers correctly.
        assert_eq!(back.edge(f, t), Some(e));
        back.reindex();
        assert_eq!(back.edge(f, t), Some(e));
        assert_eq!(back.node_count(), itc.node_count());
    }

    #[test]
    fn admits_raw_matches_bool_admission() {
        let mut info = TntInfo::default();
        assert!(info.admits_raw(Some((0b10, 2))), "untrained admits anything");
        info.add(&[true, false]);
        assert!(info.admits_raw(Some((0b10, 2))));
        assert!(!info.admits_raw(Some((0b01, 2))));
        assert!(!info.admits_raw(Some((0, 0))));
        assert!(!info.admits_raw(None), "over-long run only admitted by wildcard");
        info.any = true;
        assert!(info.admits_raw(None));
        // Stray bits above `len` don't defeat matching.
        assert_eq!(TntSig::from_raw(0b1110, 1), TntSig::from_bools(&[false]));
    }

    #[test]
    fn path_grams_sorted_and_deduped() {
        let (_, _, mut itc) = itc();
        itc.add_path_gram(3, 4);
        itc.add_path_gram(1, 2);
        itc.add_path_gram(3, 4);
        assert_eq!(itc.path_gram_count(), 2);
        assert!(itc.has_path_gram(1, 2));
        assert!(itc.has_path_gram(3, 4));
        assert!(!itc.has_path_gram(2, 3));
    }

    #[test]
    fn memory_estimate_positive() {
        let (_, _, itc) = itc();
        assert!(itc.memory_bytes() > itc.edge_count() * 8);
    }

    #[test]
    fn aia_derogation_from_collapse() {
        // Figure 4: the ITC-CFG's mean out-degree is at least the O-CFG's
        // indirect-branch AIA (direct forks merge target sets).
        let (_, ocfg, itc) = itc();
        let o = crate::aia::aia_ocfg(&ocfg);
        let i = crate::aia::aia_itc(&itc);
        assert!(i >= o, "ITC AIA {i} should be ≥ O-CFG AIA {o}");
    }
}
