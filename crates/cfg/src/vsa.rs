//! Value-set analysis (VSA) for indirect-target refinement.
//!
//! The conservative O-CFG admits the whole TypeArmor-filtered address-taken
//! set at every indirect call, which is exactly the imprecision the paper's
//! AIA metric charges against coarse CFI. Real dispatch sites are far
//! narrower: a bounded index selects a slot from a function-pointer table in
//! statically-initialised data. This module recovers those tables with a
//! classic abstract interpretation à la Balakrishnan & Reps:
//!
//! * **domain** — per-register values drawn from a three-level lattice:
//!   bounded concrete [`AbsVal::Set`]s (at most [`MAX_SET`] members), strided
//!   [`AbsVal::Interval`]s `{lo, lo+stride, …, hi}`, and `Top`;
//! * **transfer** — `movi`/`mov`/ALU arithmetic track values exactly where
//!   the domain allows (including sub-mask enumeration for `and`, the shape
//!   `andi idx, 47` produces), byte loads yield `[0, 255]`, and word loads
//!   whose address set lies entirely inside a module's statically-initialised
//!   GOT/data region are resolved against the linked image bytes — the same
//!   trust the disassembler already places in those bytes for PLT and
//!   address-taken discovery (tables are RELRO-style: never rewritten by the
//!   benign program);
//! * **flow** — a per-function forward fixpoint over the function's basic
//!   blocks, with conditional-branch refinement from `cmp`+`jcc` pairs
//!   (signed semantics, applied only to values already bounded inside
//!   `[0, i64::MAX]` where signed and unsigned orders agree) and widening to
//!   `Top` after [`WIDEN_AFTER`] visits of a block, which bounds the fixpoint;
//! * **calls** — direct calls clobber only the callee's *transitive*
//!   may-write register set (computed by a whole-image fixpoint over the call
//!   graph, following PLT stubs and tail jumps); indirect calls and anything
//!   unresolved clobber everything. Syscalls clobber `r0`–`r5`: benign
//!   kernels write the result to `r0` and may trash argument registers, and
//!   a benign `sigreturn` only re-installs a context captured at a point the
//!   flow-insensitive analysis already covers.
//!
//! The result maps each `calli`/`jmpi` site to the set of values its operand
//! register can hold — an over-approximation of the runtime targets, so
//! intersecting it with the TypeArmor set ([`crate::ocfg::OCfg::build_refined`])
//! can only remove edges no benign execution takes. Sites the analysis cannot
//! bound are simply absent and keep their conservative sets.

use crate::bb::{BlockEnd, Disassembly};
use crate::typearmor::{Function, TypeArmor};
use fg_isa::image::Image;
use fg_isa::insn::{AluOp, Cond, Insn, Reg, Width, INSN_SIZE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Maximum cardinality of an [`AbsVal::Set`]; larger collections widen to a
/// strided interval hull.
pub const MAX_SET: usize = 64;
/// Maximum number of addresses a word load will enumerate when resolving a
/// pointer table.
pub const MAX_TABLE: usize = 256;
/// Number of visits after which a block's join widens changed registers to
/// `Top`, bounding the fixpoint.
pub const WIDEN_AFTER: u32 = 8;

/// An abstract register value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Any value.
    Top,
    /// One of at most [`MAX_SET`] concrete values. The empty set is ⊥
    /// (an unreachable path).
    Set(BTreeSet<u64>),
    /// `{lo, lo + stride, …, hi}` with `lo ≤ hi`, `stride ≥ 1`, and
    /// `stride | (hi - lo)`.
    Interval {
        /// Smallest member.
        lo: u64,
        /// Largest member.
        hi: u64,
        /// Distance between members.
        stride: u64,
    },
}

impl AbsVal {
    /// The singleton abstraction of a concrete value.
    pub fn constant(v: u64) -> AbsVal {
        AbsVal::Set(BTreeSet::from([v]))
    }

    /// ⊥ — no value (unreachable).
    fn bottom() -> AbsVal {
        AbsVal::Set(BTreeSet::new())
    }

    fn is_bottom(&self) -> bool {
        matches!(self, AbsVal::Set(s) if s.is_empty())
    }

    /// The single concrete value, if exactly one.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            AbsVal::Set(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }

    /// Number of members, when not `Top`.
    fn count(&self) -> Option<u64> {
        match *self {
            AbsVal::Top => None,
            AbsVal::Set(ref s) => Some(s.len() as u64),
            AbsVal::Interval { lo, hi, stride } => Some((hi - lo) / stride + 1),
        }
    }

    /// Enumerates the members when there are at most `limit` of them.
    pub fn enumerate(&self, limit: usize) -> Option<Vec<u64>> {
        match *self {
            AbsVal::Top => None,
            AbsVal::Set(ref s) => (s.len() <= limit).then(|| s.iter().copied().collect()),
            AbsVal::Interval { lo, hi, stride } => {
                if self.count()? > limit as u64 {
                    return None;
                }
                Some(interval_members(lo, hi, stride))
            }
        }
    }

    /// Collapses small intervals to sets and oversized sets to interval
    /// hulls, keeping the representation canonical.
    fn canon(self) -> AbsVal {
        match self {
            AbsVal::Interval { lo, hi, stride } if (hi - lo) / stride < MAX_SET as u64 => {
                AbsVal::Set(interval_members(lo, hi, stride).into_iter().collect())
            }
            AbsVal::Set(s) if s.len() > MAX_SET => hull_of_set(&s),
            v => v,
        }
    }

    /// `(lo, hi, stride)` hull of the members, when not `Top`.
    fn hull(&self) -> Option<(u64, u64, u64)> {
        match *self {
            AbsVal::Top => None,
            AbsVal::Set(ref s) => {
                let lo = *s.first()?;
                let hi = *s.last()?;
                let stride = s.iter().fold(0u64, |g, &v| gcd(g, v - lo)).max(1);
                Some((lo, hi, stride))
            }
            AbsVal::Interval { lo, hi, stride } => Some((lo, hi, stride)),
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        match (self, other) {
            (AbsVal::Top, _) | (_, AbsVal::Top) => AbsVal::Top,
            (AbsVal::Set(a), AbsVal::Set(b)) => {
                let u: BTreeSet<u64> = a.union(b).copied().collect();
                AbsVal::Set(u).canon()
            }
            _ => {
                let (l1, h1, s1) = self.hull().expect("non-top");
                let (l2, h2, s2) = other.hull().expect("non-top");
                let stride = gcd(gcd(s1, s2), l1.abs_diff(l2)).max(1);
                AbsVal::Interval { lo: l1.min(l2), hi: h1.max(h2), stride }.canon()
            }
        }
    }
}

/// Members of `{lo, lo+stride, …, hi}`; `stride | (hi - lo)` guarantees the
/// walk lands exactly on `hi` and never overflows.
fn interval_members(lo: u64, hi: u64, stride: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut v = lo;
    loop {
        out.push(v);
        if v >= hi {
            break;
        }
        v += stride;
    }
    out
}

fn hull_of_set(s: &BTreeSet<u64>) -> AbsVal {
    let lo = *s.first().expect("non-empty");
    let hi = *s.last().expect("non-empty");
    let stride = s.iter().fold(0u64, |g, &v| gcd(g, v - lo)).max(1);
    AbsVal::Interval { lo, hi, stride }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Applies `op` elementwise over a set against a constant.
fn set_map(s: &BTreeSet<u64>, f: impl Fn(u64) -> u64) -> AbsVal {
    let out: BTreeSet<u64> = s.iter().map(|&v| f(v)).collect();
    AbsVal::Set(out).canon()
}

/// All 2ⁿ sub-masks of `mask` (sound result of `Top & mask`), as a set when
/// small enough, else the `[0, mask]` interval.
fn submasks(mask: u64) -> AbsVal {
    if mask.count_ones() <= MAX_SET.trailing_zeros() {
        let mut out = BTreeSet::new();
        // Standard sub-mask enumeration: m, (m-1)&mask, … , 0.
        let mut sub = mask;
        loop {
            out.insert(sub);
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & mask;
        }
        AbsVal::Set(out)
    } else {
        AbsVal::Interval { lo: 0, hi: mask, stride: 1 }.canon()
    }
}

/// Abstract transfer of one ALU operation `a ⊕ b`.
fn alu(op: AluOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    // A constant right operand unlocks exact elementwise transfer on sets.
    let bc = b.as_const();
    match op {
        AluOp::Add => {
            // Commutative: normalise a constant left operand (the common
            // `table_base + index` shape) to the right so the exact set and
            // stride-preserving interval transfers below apply.
            if bc.is_none() && a.as_const().is_some() {
                return alu(AluOp::Add, b, a);
            }
            match (a, bc) {
                (AbsVal::Set(s), Some(c)) => set_map(s, |v| v.wrapping_add(c)),
                (AbsVal::Interval { lo, hi, stride }, Some(c)) => {
                    match (lo.checked_add(c), hi.checked_add(c)) {
                        (Some(l), Some(h)) => AbsVal::Interval { lo: l, hi: h, stride: *stride },
                        _ => AbsVal::Top,
                    }
                }
                _ => {
                    // Symmetric: also handles constant-left (table base + index).
                    let (Some((l1, h1, s1)), Some((l2, h2, s2))) = (a.hull(), b.hull()) else {
                        return AbsVal::Top;
                    };
                    match (l1.checked_add(l2), h1.checked_add(h2)) {
                        (Some(lo), Some(hi)) => {
                            AbsVal::Interval { lo, hi, stride: gcd(s1, s2).max(1) }.canon()
                        }
                        _ => AbsVal::Top,
                    }
                }
            }
        }
        AluOp::Sub => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v.wrapping_sub(c)),
            (AbsVal::Interval { lo, hi, stride }, Some(c)) if *lo >= c => {
                AbsVal::Interval { lo: lo - c, hi: hi - c, stride: *stride }
            }
            _ => AbsVal::Top,
        },
        AluOp::Mul => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v.wrapping_mul(c)),
            (AbsVal::Interval { lo, hi, stride }, Some(c)) if c > 0 => {
                match (lo.checked_mul(c), hi.checked_mul(c), stride.checked_mul(c)) {
                    (Some(l), Some(h), Some(s)) => AbsVal::Interval { lo: l, hi: h, stride: s },
                    _ => AbsVal::Top,
                }
            }
            _ => AbsVal::Top,
        },
        AluOp::And => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v & c),
            // Anything masked is a sub-mask of the mask.
            (_, Some(c)) => submasks(c),
            _ => AbsVal::Top,
        },
        AluOp::Or => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v | c),
            _ => AbsVal::Top,
        },
        AluOp::Xor => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v ^ c),
            _ => AbsVal::Top,
        },
        AluOp::Shl => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v.wrapping_shl((c & 63) as u32)),
            (AbsVal::Interval { lo, hi, stride }, Some(c)) => {
                let k = (c & 63) as u32;
                match (lo.checked_shl(k), hi.checked_shl(k), stride.checked_shl(k)) {
                    (Some(l), Some(h), Some(s)) if h >> k == *hi && s >> k == *stride => {
                        AbsVal::Interval { lo: l, hi: h, stride: s }
                    }
                    _ => AbsVal::Top,
                }
            }
            _ => AbsVal::Top,
        },
        AluOp::Shr => match (a, bc) {
            (AbsVal::Set(s), Some(c)) => set_map(s, |v| v.wrapping_shr((c & 63) as u32)),
            (AbsVal::Interval { lo, hi, .. }, Some(c)) => {
                let k = (c & 63) as u32;
                AbsVal::Interval { lo: lo >> k, hi: hi >> k, stride: 1 }.canon()
            }
            _ => AbsVal::Top,
        },
    }
}

/// Refines `val` by the constraint `cc.eval((v as i64) - rhs)` (the machine's
/// signed flag semantics). Sound only while the value is known to lie in
/// `[0, i64::MAX]`, where signed and unsigned orders coincide; `Top` can be
/// refined by `Eq` alone.
fn refine(val: &AbsVal, cc: Cond, rhs: i64) -> AbsVal {
    let eval = |v: u64| -> bool {
        let ord = (v as i128) - (rhs as i128);
        match cc {
            Cond::Eq => ord == 0,
            Cond::Ne => ord != 0,
            Cond::Lt => ord < 0,
            Cond::Le => ord <= 0,
            Cond::Gt => ord > 0,
            Cond::Ge => ord >= 0,
        }
    };
    match val {
        AbsVal::Top => {
            if cc == Cond::Eq {
                AbsVal::constant(rhs as u64)
            } else {
                AbsVal::Top
            }
        }
        AbsVal::Set(s) => {
            if *s.last().unwrap_or(&0) > i64::MAX as u64 {
                return val.clone(); // signed/unsigned orders diverge
            }
            AbsVal::Set(s.iter().copied().filter(|&v| eval(v)).collect())
        }
        &AbsVal::Interval { lo, hi, stride } => {
            if hi > i64::MAX as u64 {
                return val.clone();
            }
            let (mut lo, mut hi) = (lo, hi);
            match cc {
                Cond::Eq => {
                    let c = rhs as u64;
                    return if rhs >= 0 && c >= lo && c <= hi && (c - lo).is_multiple_of(stride) {
                        AbsVal::constant(c)
                    } else {
                        AbsVal::bottom()
                    };
                }
                Cond::Ne => {
                    // Only the endpoints can be trimmed representably.
                    if rhs >= 0 && lo == rhs as u64 {
                        lo += stride;
                    }
                    if rhs >= 0 && hi == rhs as u64 && hi >= stride {
                        hi -= stride;
                    }
                }
                Cond::Lt | Cond::Le => {
                    let bound = if cc == Cond::Lt { rhs.saturating_sub(1) } else { rhs };
                    if bound < lo as i64 {
                        return AbsVal::bottom();
                    }
                    let b = (bound as u64).min(hi);
                    hi = lo + (b - lo) / stride * stride;
                }
                Cond::Gt | Cond::Ge => {
                    let bound = if cc == Cond::Gt { rhs.saturating_add(1) } else { rhs };
                    if bound > hi as i64 {
                        return AbsVal::bottom();
                    }
                    let b = (bound.max(0) as u64).max(lo);
                    lo = lo + (b - lo).div_ceil(stride) * stride;
                }
            }
            if lo > hi {
                AbsVal::bottom()
            } else {
                AbsVal::Interval { lo, hi, stride }.canon()
            }
        }
    }
}

/// Whether `[va, va+8)` lies in a module's statically-initialised GOT/data
/// region (linker-written, treated as read-only table storage).
fn in_static_data(image: &Image, va: u64) -> bool {
    image
        .modules()
        .iter()
        .any(|m| va >= m.got_start && va.checked_add(8).is_some_and(|e| e <= m.end()))
}

/// Resolves a word load through an enumerable address set against the linked
/// image bytes.
fn load_word(image: &Image, addr: &AbsVal) -> AbsVal {
    let Some(addrs) = addr.enumerate(MAX_TABLE) else { return AbsVal::Top };
    let mut out = BTreeSet::new();
    for a in addrs {
        if !in_static_data(image, a) {
            return AbsVal::Top;
        }
        let Some(bytes) = image.read_bytes(a, 8) else { return AbsVal::Top };
        out.insert(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
    }
    AbsVal::Set(out).canon()
}

// ---------------------------------------------------------------------------
// Abstract machine state
// ---------------------------------------------------------------------------

const NREGS: usize = Reg::COUNT;
const ALL_REGS: u16 = u16::MAX;

/// Register file + compare-flag abstraction at one program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: Vec<AbsVal>,
    /// Last `cmp reg, const` whose flags are still live: `(reg, rhs)`.
    flags: Option<(Reg, i64)>,
}

impl State {
    fn top() -> State {
        State { regs: vec![AbsVal::Top; NREGS], flags: None }
    }

    fn get(&self, r: Reg) -> &AbsVal {
        &self.regs[r.index()]
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        if let Some((fr, _)) = self.flags {
            if fr == r {
                self.flags = None;
            }
        }
        self.regs[r.index()] = v;
    }

    fn clobber_mask(&mut self, mask: u16) {
        for i in 0..NREGS {
            if mask & (1 << i) != 0 {
                self.set(Reg::new(i as u8), AbsVal::Top);
            }
        }
    }

    /// Joins `incoming` into `self`; returns whether anything changed.
    /// With `widen`, registers that would change go straight to `Top`.
    fn join_from(&mut self, incoming: &State, widen: bool) -> bool {
        let mut changed = false;
        for i in 0..NREGS {
            let j = self.regs[i].join(&incoming.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = if widen { AbsVal::Top } else { j };
                changed = true;
            }
        }
        if self.flags != incoming.flags && self.flags.is_some() {
            self.flags = None;
            changed = true;
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Interprocedural clobber summaries
// ---------------------------------------------------------------------------

fn written_reg(insn: &Insn) -> Option<Reg> {
    match *insn {
        Insn::MovImm { rd, .. }
        | Insn::Mov { rd, .. }
        | Insn::Alu { rd, .. }
        | Insn::AluImm { rd, .. }
        | Insn::Load { rd, .. }
        | Insn::Pop { rd } => Some(rd),
        _ => None,
    }
}

/// Syscalls may write the result and trash the argument registers.
fn syscall_mask() -> u16 {
    (0..=5).fold(0u16, |m, i| m | (1 << i))
}

/// Resolves a direct call/jump target to a function index, following one PLT
/// stub indirection.
fn resolve_fn(ta: &TypeArmor, disasm: &Disassembly, target: u64) -> Option<usize> {
    if let Ok(fi) = ta.functions.binary_search_by_key(&target, |f| f.entry) {
        return Some(fi);
    }
    let bi = disasm.block_containing(target)?;
    let b = &disasm.blocks[bi];
    if let BlockEnd::Terminator(Insn::JmpInd { .. }) = b.term {
        let &t = disasm.plt_targets.get(&b.last_insn())?;
        return ta.functions.binary_search_by_key(&t, |f| f.entry).ok();
    }
    None
}

/// Per-function transitive may-write register masks (bit *i* = `r<i>`), via a
/// fixpoint over the direct call graph. Functions containing unresolved
/// indirect transfers clobber everything.
fn clobber_masks(image: &Image, disasm: &Disassembly, ta: &TypeArmor) -> Vec<u16> {
    let n = ta.functions.len();
    let mut masks = vec![0u16; n];
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];

    for (fi, f) in ta.functions.iter().enumerate() {
        let mut va = f.entry;
        let mut last = None;
        while va < f.end {
            let Some(insn) = image.insn_at(va) else { break };
            last = Some(insn);
            if let Some(r) = written_reg(&insn) {
                masks[fi] |= 1 << r.index();
            }
            match insn {
                Insn::Syscall => masks[fi] |= syscall_mask(),
                Insn::Call { target } | Insn::Jmp { target } | Insn::Jcc { target, .. } => {
                    // Calls, tail jumps, and cross-extent branches propagate
                    // the target function's clobbers; intra-extent branches
                    // resolve to fi itself or stay local (no-op).
                    match resolve_fn(ta, disasm, target) {
                        Some(ci) => callees[fi].push(ci),
                        None if f.contains(target) => {}
                        None => masks[fi] = ALL_REGS,
                    }
                }
                Insn::CallInd { .. } => masks[fi] = ALL_REGS,
                Insn::JmpInd { .. } => match disasm.plt_targets.get(&va) {
                    Some(&t) => match resolve_fn(ta, disasm, t) {
                        Some(ci) => callees[fi].push(ci),
                        None => masks[fi] = ALL_REGS,
                    },
                    None => masks[fi] = ALL_REGS,
                },
                _ => {}
            }
            va += INSN_SIZE;
        }
        // Control can leave the extent by falling (or returning from a call
        // at the last slot) into the next function's entry.
        let leaks_into_next = match last {
            None | Some(Insn::Halt | Insn::Ret | Insn::Jmp { .. } | Insn::JmpInd { .. }) => false,
            Some(_) => true,
        };
        if leaks_into_next {
            match resolve_fn(ta, disasm, f.end) {
                Some(ni) if ni != fi => callees[fi].push(ni),
                Some(_) => {}
                None => masks[fi] = ALL_REGS,
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..n {
            let mut m = masks[fi];
            for &ci in &callees[fi] {
                m |= masks[ci];
            }
            if m != masks[fi] {
                masks[fi] = m;
                changed = true;
            }
        }
    }
    masks
}

// ---------------------------------------------------------------------------
// Per-function fixpoint
// ---------------------------------------------------------------------------

/// The analysis result: per indirect-branch site (address of the `calli` /
/// `jmpi` instruction), the set of values its operand can hold.
#[derive(Debug, Clone, Default)]
pub struct Vsa {
    /// Site address → over-approximate concrete target set.
    pub resolved: BTreeMap<u64, BTreeSet<u64>>,
    /// Indirect-branch sites inspected (excluding returns and PLT stubs).
    pub sites: BTreeSet<u64>,
    /// Functions analysed to a fixpoint.
    pub functions: usize,
}

impl Vsa {
    /// Intersects `base` with the resolved set for `site`, falling back to
    /// `base` when the site is unresolved or the intersection is empty.
    pub fn narrow(&self, site: u64, base: Vec<u64>) -> Vec<u64> {
        let Some(t) = self.resolved.get(&site) else { return base };
        let narrowed: Vec<u64> = base.iter().copied().filter(|v| t.contains(v)).collect();
        if narrowed.is_empty() {
            base
        } else {
            narrowed
        }
    }
}

struct FnAnalysis<'a> {
    image: &'a Image,
    disasm: &'a Disassembly,
    blocks: Vec<usize>,
    /// Block start → position in `blocks`.
    index: BTreeMap<u64, usize>,
    in_states: Vec<Option<State>>,
    visits: Vec<u32>,
    masks: &'a [u16],
    ta: &'a TypeArmor,
}

impl FnAnalysis<'_> {
    fn propagate(&mut self, to: u64, state: State, f: &Function, work: &mut VecDeque<usize>) {
        if to < f.entry || to >= f.end {
            return;
        }
        let Some(&li) = self.index.get(&to) else { return };
        self.visits[li] += 1;
        let widen = self.visits[li] > WIDEN_AFTER;
        match &mut self.in_states[li] {
            Some(existing) => {
                if existing.join_from(&state, widen) {
                    work.push_back(li);
                }
            }
            slot @ None => {
                *slot = Some(state);
                work.push_back(li);
            }
        }
    }

    fn run(&mut self, f: &Function, externals: &[u64], out: &mut Vsa) {
        let Some(&entry_li) = self.index.get(&f.entry) else { return };
        self.in_states[entry_li] = Some(State::top());
        let mut work: VecDeque<usize> = VecDeque::from([entry_li]);
        // Blocks entered by branches from outside the extent carry unknown
        // register state.
        for &va in externals {
            if let Some(&li) = self.index.get(&va) {
                if self.in_states[li].is_none() {
                    self.in_states[li] = Some(State::top());
                    work.push_back(li);
                }
            }
        }
        // Belt-and-braces bound on top of widening.
        let mut budget = self.blocks.len().saturating_mul(64) + 256;

        while let Some(li) = work.pop_front() {
            if budget == 0 {
                return;
            }
            budget -= 1;
            let mut st = self.in_states[li].clone().expect("queued with state");
            let b = self.disasm.blocks[self.blocks[li]];

            // Straight-line body.
            let mut va = b.start;
            let body_end = match b.term {
                BlockEnd::Terminator(_) => b.last_insn(),
                BlockEnd::FallIntoNext => b.end,
            };
            while va < body_end {
                if let Some(insn) = self.image.insn_at(va) {
                    step(&mut st, &insn, self.image);
                }
                va += INSN_SIZE;
            }

            match b.term {
                BlockEnd::FallIntoNext => self.propagate(b.end, st, f, &mut work),
                BlockEnd::Terminator(term) => {
                    let site = b.last_insn();
                    match term {
                        Insn::Jmp { target } => self.propagate(target, st, f, &mut work),
                        Insn::Jcc { cc, target } => {
                            let mut taken = st.clone();
                            let mut fall = st;
                            if let Some((r, rhs)) = taken.flags {
                                let v = taken.get(r).clone();
                                taken.set(r, refine(&v, cc, rhs));
                                fall.set(r, refine(&v, cc.invert(), rhs));
                            }
                            if !taken.get_any_bottom() {
                                self.propagate(target, taken, f, &mut work);
                            }
                            if !fall.get_any_bottom() {
                                self.propagate(b.end, fall, f, &mut work);
                            }
                        }
                        Insn::Call { target } => {
                            let mask = resolve_fn(self.ta, self.disasm, target)
                                .map_or(ALL_REGS, |ci| self.masks[ci]);
                            st.clobber_mask(mask);
                            self.propagate(b.end, st, f, &mut work);
                        }
                        Insn::CallInd { rs } => {
                            out.record(site, st.get(rs));
                            st.clobber_mask(ALL_REGS);
                            self.propagate(b.end, st, f, &mut work);
                        }
                        // PLT stubs already resolve through the GOT.
                        Insn::JmpInd { rs } if !self.disasm.plt_targets.contains_key(&site) => {
                            out.record(site, st.get(rs));
                        }
                        Insn::Syscall => {
                            st.clobber_mask(syscall_mask());
                            self.propagate(b.end, st, f, &mut work);
                        }
                        // Halt/Ret end the flow; nothing to propagate.
                        _ => {}
                    }
                }
            }
        }
    }
}

impl State {
    fn get_any_bottom(&self) -> bool {
        self.regs.iter().any(AbsVal::is_bottom)
    }
}

impl Vsa {
    /// Records the latest abstract value at a site. The fixpoint re-processes
    /// a site's block whenever its in-state widens, so the final call wins —
    /// and a site that widens past enumerability must drop any earlier,
    /// narrower answer.
    fn record(&mut self, site: u64, val: &AbsVal) {
        self.sites.insert(site);
        match val.enumerate(MAX_TABLE) {
            Some(targets) => {
                self.resolved.insert(site, targets.into_iter().collect());
            }
            None => {
                self.resolved.remove(&site);
            }
        }
    }
}

/// Abstract transfer of one straight-line instruction.
fn step(st: &mut State, insn: &Insn, image: &Image) {
    match *insn {
        Insn::MovImm { rd, imm } => st.set(rd, AbsVal::constant(imm as i64 as u64)),
        Insn::Mov { rd, rs } => {
            let v = st.get(rs).clone();
            st.set(rd, v);
        }
        Insn::Alu { op, rd, rs } => {
            let v = alu(op, st.get(rd), st.get(rs));
            st.set(rd, v);
        }
        Insn::AluImm { op, rd, imm } => {
            let v = alu(op, st.get(rd), &AbsVal::constant(imm as i64 as u64));
            st.set(rd, v);
        }
        Insn::Cmp { rs1, rs2 } => {
            st.flags = match st.get(rs2).as_const() {
                Some(c) if c <= i64::MAX as u64 => Some((rs1, c as i64)),
                _ => None,
            };
        }
        Insn::CmpImm { rs, imm } => st.flags = Some((rs, imm as i64)),
        Insn::Load { w: Width::B1, rd, .. } => {
            st.set(rd, AbsVal::Interval { lo: 0, hi: 255, stride: 1 });
        }
        Insn::Load { w: Width::B8, rd, base, off } => {
            let addr = alu(AluOp::Add, st.get(base), &AbsVal::constant(off as i64 as u64));
            let v = load_word(image, &addr);
            st.set(rd, v);
        }
        Insn::Pop { rd } => st.set(rd, AbsVal::Top),
        // Stores, pushes and nops leave the register state untouched;
        // terminators are handled at block edges.
        _ => {}
    }
}

/// Runs the value-set analysis over every function of a disassembled image.
pub fn analyze(image: &Image, disasm: &Disassembly, ta: &TypeArmor) -> Vsa {
    let masks = clobber_masks(image, disasm, ta);
    let mut out = Vsa::default();

    // Direct branches, by (source, target): a branch entering a function
    // mid-extent from outside it is an external entry with unknown state.
    let cross_branches: Vec<(u64, u64)> = disasm
        .blocks
        .iter()
        .filter_map(|b| match b.term {
            BlockEnd::Terminator(Insn::Jmp { target } | Insn::Jcc { target, .. }) => {
                Some((b.last_insn(), target))
            }
            _ => None,
        })
        .collect();

    for f in &ta.functions {
        // Local CFG: the blocks inside this function's extent.
        let blocks: Vec<usize> = disasm
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.start >= f.entry && b.start < f.end)
            .map(|(i, _)| i)
            .collect();
        if blocks.is_empty() {
            continue;
        }
        let index: BTreeMap<u64, usize> =
            blocks.iter().enumerate().map(|(li, &bi)| (disasm.blocks[bi].start, li)).collect();
        let externals: Vec<u64> = cross_branches
            .iter()
            .filter(|&&(src, tgt)| tgt > f.entry && tgt < f.end && !(src >= f.entry && src < f.end))
            .map(|&(_, tgt)| tgt)
            .collect();
        let n = blocks.len();
        let mut fa = FnAnalysis {
            image,
            disasm,
            blocks,
            index,
            in_states: vec![None; n],
            visits: vec![0; n],
            masks: &masks,
            ta,
        };
        fa.run(f, &externals, &mut out);
        out.functions += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocfg::OCfg;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;
    use fg_isa::insn::regs::*;

    /// The canonical clamp-dispatch shape the servers use: byte index,
    /// bounds check with a zero fallback, scaled table load, `calli`.
    fn dispatch_image(n_handlers: usize, extra_taken: usize) -> Image {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.lea(R8, "idx"); // command byte in data (readable when executed)
        a.ldb(R9, R8, 0);
        a.cmpi(R9, n_handlers as i32);
        a.jcc(Cond::Lt, "ok");
        a.movi(R9, 0);
        a.label("ok");
        a.mov(R11, R9);
        a.shli(R11, 3);
        a.lea(R12, "table");
        a.add(R12, R11);
        a.ld(R13, R12, 0);
        a.calli(R13);
        a.halt();
        let mut names: Vec<String> = Vec::new();
        for h in 0..n_handlers {
            let l = format!("h{h}");
            a.label(l.clone());
            names.push(l);
            a.movi(R0, h as i32);
            a.ret();
        }
        // Unrelated address-taken functions inflate the conservative set.
        let mut extra: Vec<String> = Vec::new();
        for e in 0..extra_taken {
            let l = format!("x{e}");
            a.label(l.clone());
            extra.push(l);
            a.movi(R0, -1);
            a.ret();
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        a.data_ptrs("table", &refs);
        let xrefs: Vec<&str> = extra.iter().map(String::as_str).collect();
        a.data_ptrs("others", &xrefs);
        a.data_bytes("idx", &[3]);
        a.finish().map(|m| Linker::new(m).link().unwrap()).unwrap()
    }

    fn calli_site(cfg: &OCfg) -> (usize, u64) {
        cfg.disasm
            .blocks
            .iter()
            .enumerate()
            .find_map(|(i, b)| {
                matches!(b.term, crate::bb::BlockEnd::Terminator(Insn::CallInd { .. }))
                    .then(|| (i, b.last_insn()))
            })
            .expect("calli present")
    }

    #[test]
    fn clamp_dispatch_resolves_to_table() {
        let img = dispatch_image(6, 10);
        let cfg = OCfg::build(&img);
        let vsa = analyze(&img, &cfg.disasm, &cfg.typearmor);
        let (_, site) = calli_site(&cfg);
        let t = vsa.resolved.get(&site).expect("site resolved");
        assert_eq!(t.len(), 6, "exactly the six handlers: {t:x?}");
        let main = img.symbol("main").unwrap();
        for h in 0..6u64 {
            // handlers start after the 12-instruction main body.
            let addr = main + (12 + 2 * h) * INSN_SIZE;
            assert!(t.contains(&addr), "handler {h} at {addr:#x} in {t:x?}");
        }
    }

    #[test]
    fn refined_ocfg_shrinks_indirect_call_set() {
        let img = dispatch_image(6, 10);
        let base = OCfg::build(&img);
        let refined = OCfg::build_refined(&img);
        let (bi, _) = calli_site(&base);
        let conservative = base.succs[bi].targets().len();
        let narrow = refined.succs[bi].targets().len();
        assert!(narrow < conservative, "{narrow} < {conservative}");
        assert_eq!(narrow, 6);
        // Refined targets are a subset of the conservative set.
        for t in refined.succs[bi].targets() {
            assert!(base.succs[bi].targets().contains(t));
        }
    }

    #[test]
    fn masked_index_enumerates_submasks() {
        // `and idx, 0b101` admits indices {0, 1, 4, 5}.
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.andi(R1, 0b101);
        a.shli(R1, 3);
        a.lea(R2, "table");
        a.add(R2, R1);
        a.ld(R3, R2, 0);
        a.calli(R3);
        a.halt();
        let mut names: Vec<String> = Vec::new();
        for h in 0..6 {
            let l = format!("f{h}");
            a.label(l.clone());
            names.push(l);
            a.ret();
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        a.data_ptrs("table", &refs);
        let img = Linker::new(a.finish().unwrap()).link().unwrap();
        let cfg = OCfg::build(&img);
        let vsa = analyze(&img, &cfg.disasm, &cfg.typearmor);
        let (_, site) = calli_site(&cfg);
        let t = vsa.resolved.get(&site).expect("resolved");
        let main = img.symbol("main").unwrap();
        let f = |i: u64| main + (7 + i) * INSN_SIZE;
        assert_eq!(
            t.iter().copied().collect::<Vec<_>>(),
            vec![f(0), f(1), f(4), f(5)],
            "sub-masks of 0b101 select handlers 0, 1, 4, 5"
        );
    }

    #[test]
    fn unbounded_pointer_stays_conservative() {
        // The callee register is loaded from the heap: nothing to resolve.
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.movi(R8, 0x6000_0000);
        a.ld(R9, R8, 0);
        a.calli(R9);
        a.halt();
        a.label("f");
        a.ret();
        a.data_ptrs("table", &["f"]);
        let img = Linker::new(a.finish().unwrap()).link().unwrap();
        let base = OCfg::build(&img);
        let refined = OCfg::build_refined(&img);
        let vsa = analyze(&img, &base.disasm, &base.typearmor);
        let (bi, site) = calli_site(&base);
        assert!(!vsa.resolved.contains_key(&site), "heap load must stay Top");
        assert_eq!(base.succs[bi], refined.succs[bi], "refinement is a no-op");
    }

    #[test]
    fn callee_clobbers_respect_summaries() {
        // The index in r9 survives a call to a function that only writes
        // r0/r4, but not a call to one that writes r9.
        for (clobbers_r9, expect_resolved) in [(false, true), (true, false)] {
            let mut a = Asm::new("app");
            a.export("main");
            a.label("main");
            a.movi(R9, 1);
            a.call("helper");
            a.cmpi(R9, 2);
            a.jcc(Cond::Lt, "ok");
            a.movi(R9, 0);
            a.label("ok");
            a.shli(R9, 3);
            a.lea(R12, "table");
            a.add(R12, R9);
            a.ld(R13, R12, 0);
            a.calli(R13);
            a.halt();
            a.label("helper");
            if clobbers_r9 {
                a.movi(R9, 99);
            } else {
                a.movi(R4, 99);
            }
            a.movi(R0, 0);
            a.ret();
            a.label("h0");
            a.ret();
            a.label("h1");
            a.ret();
            a.data_ptrs("table", &["h0", "h1"]);
            let img = Linker::new(a.finish().unwrap()).link().unwrap();
            let cfg = OCfg::build(&img);
            let vsa = analyze(&img, &cfg.disasm, &cfg.typearmor);
            let (_, site) = calli_site(&cfg);
            assert_eq!(
                vsa.resolved.contains_key(&site),
                expect_resolved,
                "clobbers_r9 = {clobbers_r9}"
            );
        }
    }

    #[test]
    fn empty_intersection_falls_back_to_base_set() {
        let vsa = Vsa {
            resolved: BTreeMap::from([(0x100, BTreeSet::from([0xdead]))]),
            sites: BTreeSet::from([0x100]),
            functions: 1,
        };
        // No overlap with the base set: keep the conservative answer.
        assert_eq!(vsa.narrow(0x100, vec![1, 2]), vec![1, 2]);
        // Overlap: narrow.
        assert_eq!(vsa.narrow(0x100, vec![1, 0xdead]), vec![0xdead]);
        // Unresolved site: untouched.
        assert_eq!(vsa.narrow(0x200, vec![7]), vec![7]);
    }

    #[test]
    fn refined_cfg_stays_sound_under_execution() {
        let img = dispatch_image(6, 4);
        let cfg = OCfg::build_refined(&img);
        let mut m = fg_cpu::Machine::new(&img, 0x1000);
        m.enable_branch_log();
        let stop = m.run(&mut fg_cpu::NullKernel, 10_000);
        assert_eq!(stop, fg_cpu::StopReason::Halted);
        for b in m.branch_log.as_ref().unwrap() {
            let bi = cfg.disasm.block_containing(b.from).expect("known block");
            assert!(
                cfg.admits(bi, b.to) || b.kind == fg_isa::insn::CofiKind::FarTransfer,
                "refined O-CFG must admit {:#x} → {:#x}",
                b.from,
                b.to,
            );
        }
    }

    #[test]
    fn domain_operations_are_canonical() {
        let a = AbsVal::Interval { lo: 0, hi: 24, stride: 8 }.canon();
        assert_eq!(a, AbsVal::Set(BTreeSet::from([0, 8, 16, 24])));
        let j = AbsVal::constant(4).join(&AbsVal::constant(12));
        assert_eq!(j, AbsVal::Set(BTreeSet::from([4, 12])));
        let t = AbsVal::Top.join(&AbsVal::constant(1));
        assert_eq!(t, AbsVal::Top);
        // Widening an oversized set to its strided hull.
        let big: BTreeSet<u64> = (0..=(MAX_SET as u64)).map(|i| i * 4).collect();
        let h = AbsVal::Set(big).canon();
        assert_eq!(h, AbsVal::Interval { lo: 0, hi: MAX_SET as u64 * 4, stride: 4 });
    }

    #[test]
    fn refinement_matches_signed_flags() {
        let v = AbsVal::Interval { lo: 0, hi: 255, stride: 1 };
        let r = refine(&v, Cond::Lt, 6);
        assert_eq!(r, AbsVal::Set((0..6).collect()));
        let r = refine(&v, Cond::Ge, 250);
        assert_eq!(r, AbsVal::Set((250..=255).collect()));
        assert!(refine(&v, Cond::Lt, 0).is_bottom());
        assert_eq!(refine(&AbsVal::Top, Cond::Eq, 42), AbsVal::constant(42));
        assert_eq!(refine(&AbsVal::Top, Cond::Lt, 42), AbsVal::Top);
        // A huge value defeats the signed/unsigned agreement precondition.
        let huge = AbsVal::Interval { lo: 0, hi: u64::MAX, stride: 1 };
        assert_eq!(refine(&huge, Cond::Lt, 6), huge);
    }
}
