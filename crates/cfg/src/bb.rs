//! Basic-block discovery over linked images.
//!
//! The analyser "disassembles and analyzes a binary executable and its
//! dependent shared libraries" (§4.1) — here a precise linear sweep (the ISA
//! is fixed-width) followed by leader-based block splitting. Leaders are
//! module entries, exported symbols, PLT stubs, direct-branch targets,
//! post-terminator addresses, and *address-taken* code addresses discovered
//! in data sections, GOTs, and immediate operands (the conservative indirect
//! target universe).

use fg_isa::image::{Image, LoadedModule};
use fg_isa::insn::{Insn, INSN_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockEnd {
    /// Ends at a change-of-flow (or `halt`) instruction.
    Terminator(Insn),
    /// Split by a leader: control falls into the next block.
    FallIntoNext,
}

/// A basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Entry address.
    pub start: u64,
    /// Exclusive end address.
    pub end: u64,
    /// Index of the containing module in the image.
    pub module: usize,
    /// How the block ends.
    pub term: BlockEnd,
}

impl BasicBlock {
    /// Address of the last instruction (the terminator, when present).
    pub fn last_insn(&self) -> u64 {
        self.end - INSN_SIZE
    }

    /// Number of instructions.
    pub fn len(&self) -> u64 {
        (self.end - self.start) / INSN_SIZE
    }

    /// Whether the block is empty (never true for constructed blocks).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// The output of disassembly: blocks plus the address-taken set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Disassembly {
    /// All basic blocks, sorted by start address.
    pub blocks: Vec<BasicBlock>,
    /// Code addresses whose value appears in data/GOT/immediates — the
    /// conservative universe of indirect branch targets.
    pub address_taken: BTreeSet<u64>,
    /// Per-module resolved PLT stub → final target (read from the GOT).
    pub plt_targets: BTreeMap<u64, u64>,
}

impl Disassembly {
    /// Index of the block starting at `va`.
    pub fn block_at(&self, va: u64) -> Option<usize> {
        self.blocks.binary_search_by_key(&va, |b| b.start).ok()
    }

    /// Index of the block *containing* `va`.
    pub fn block_containing(&self, va: u64) -> Option<usize> {
        match self.blocks.binary_search_by_key(&va, |b| b.start) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => (va < self.blocks[i - 1].end).then_some(i - 1),
        }
    }
}

fn module_insns(image: &Image, m: &LoadedModule) -> Vec<(u64, Insn)> {
    let mut out = Vec::new();
    let mut va = m.base;
    while va < m.exec_end {
        if let Some(insn) = image.insn_at(va) {
            out.push((va, insn));
        }
        va += INSN_SIZE;
    }
    out
}

/// Scans a module's writable portion (GOT + data) for plausible code
/// pointers.
fn scan_data_pointers(image: &Image, m: &LoadedModule, taken: &mut BTreeSet<u64>) {
    let data_off = (m.got_start - m.base) as usize;
    let bytes = &m.bytes[data_off..];
    for chunk in bytes.chunks_exact(8) {
        let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        if v % INSN_SIZE == 0 && image.is_code(v) {
            taken.insert(v);
        }
    }
}

/// Resolves PLT stubs by reading their GOT slot from the initialised image
/// (the `movi fp, &got; ld fp,[fp]; jmp *fp` pattern).
fn resolve_plt(
    image: &Image,
    m: &LoadedModule,
    insns: &[(u64, Insn)],
    out: &mut BTreeMap<u64, u64>,
) {
    for w in insns.windows(3) {
        let (va0, i0) = w[0];
        if va0 < m.plt_start {
            continue;
        }
        if let (Insn::MovImm { imm, .. }, Insn::Load { .. }, Insn::JmpInd { .. }) =
            (i0, w[1].1, w[2].1)
        {
            let got_slot = imm as u64;
            if let Some(bytes) = image.read_bytes(got_slot, 8) {
                let target = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                if image.is_code(target) {
                    // The TIP the stub produces comes from its indirect jump.
                    out.insert(w[2].0, target);
                }
            }
        }
    }
}

/// Disassembles a linked image into basic blocks.
pub fn disassemble(image: &Image) -> Disassembly {
    let mut address_taken = BTreeSet::new();
    let mut plt_targets = BTreeMap::new();
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    let mut per_module: Vec<Vec<(u64, Insn)>> = Vec::new();

    for m in image.modules() {
        let insns = module_insns(image, m);
        leaders.insert(m.base);
        for (name, va) in &m.exports {
            let _ = name;
            if m.contains_code(*va) {
                leaders.insert(*va);
            }
        }
        // PLT stub starts.
        let mut va = m.plt_start;
        while va < m.exec_end {
            leaders.insert(va);
            va += 3 * INSN_SIZE;
        }
        for &(va, insn) in &insns {
            if let Some(t) = insn.direct_target() {
                if image.is_code(t) {
                    leaders.insert(t);
                }
            }
            if insn.is_terminator() && va + INSN_SIZE < m.exec_end {
                leaders.insert(va + INSN_SIZE);
            }
            // Address-taken via immediates (lea-materialised code pointers).
            if let Insn::MovImm { imm, .. } = insn {
                let v = imm as u64;
                if v.is_multiple_of(INSN_SIZE) && image.is_code(v) {
                    address_taken.insert(v);
                }
            }
        }
        scan_data_pointers(image, m, &mut address_taken);
        resolve_plt(image, m, &insns, &mut plt_targets);
        per_module.push(insns);
    }
    leaders.extend(address_taken.iter().copied());

    // Build blocks from leaders + terminators.
    let mut blocks = Vec::new();
    for (mi, m) in image.modules().iter().enumerate() {
        let insns = &per_module[mi];
        let mut cur_start: Option<u64> = None;
        for &(va, insn) in insns {
            if cur_start.is_none() {
                cur_start = Some(va);
            } else if leaders.contains(&va) {
                // Split: previous block falls into this one.
                blocks.push(BasicBlock {
                    start: cur_start.take().expect("open block"),
                    end: va,
                    module: mi,
                    term: BlockEnd::FallIntoNext,
                });
                cur_start = Some(va);
            }
            if insn.is_terminator() {
                blocks.push(BasicBlock {
                    start: cur_start.take().expect("open block"),
                    end: va + INSN_SIZE,
                    module: mi,
                    term: BlockEnd::Terminator(insn),
                });
            }
        }
        if let Some(start) = cur_start {
            // Trailing straight-line code (e.g. data follows); treat as
            // falling off the module = terminated.
            blocks.push(BasicBlock {
                start,
                end: m.exec_end,
                module: mi,
                term: BlockEnd::FallIntoNext,
            });
        }
    }
    blocks.sort_by_key(|b| b.start);
    Disassembly { blocks, address_taken, plt_targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;
    use fg_isa::insn::regs::*;
    use fg_isa::insn::Cond;

    fn two_module_image() -> Image {
        let mut lib = Asm::new("libc");
        lib.export("util");
        lib.label("util");
        lib.movi(R0, 1);
        lib.ret();

        let mut a = Asm::new("app");
        a.import("util").needs("libc");
        a.export("main");
        a.label("main");
        a.movi(R0, 2); // block 1
        a.cmpi(R0, 0);
        a.jcc(Cond::Gt, "big"); // terminator
        a.halt(); // block 2
        a.label("big");
        a.lea(R1, "table"); // block 3: address-taken via data
        a.ld(R2, R1, 0);
        a.calli(R2); // terminator
        a.call("util"); // block 4 (PLT call)
        a.halt();
        a.label("handler");
        a.movi(R3, 9);
        a.ret();
        a.data_ptrs("table", &["handler"]);
        Linker::new(a.finish().unwrap()).library(lib.finish().unwrap()).link().unwrap()
    }

    #[test]
    fn blocks_are_sorted_and_nonoverlapping() {
        let img = two_module_image();
        let d = disassemble(&img);
        assert!(d.blocks.len() >= 6);
        for w in d.blocks.windows(2) {
            assert!(w[0].start < w[1].start);
            if w[0].module == w[1].module {
                assert!(w[0].end <= w[1].start, "overlap between {w:?}");
            }
        }
        for b in &d.blocks {
            assert!(!b.is_empty());
            assert!(!b.is_empty());
        }
    }

    #[test]
    fn handler_is_address_taken() {
        let img = two_module_image();
        let d = disassemble(&img);
        let handler = img.symbol("main").unwrap() + 9 * INSN_SIZE; // label("handler")
        assert!(
            d.address_taken.contains(&handler),
            "data_ptrs pointer should be discovered, taken = {:x?}",
            d.address_taken
        );
        // And the handler starts a block.
        assert!(d.block_at(handler).is_some());
    }

    #[test]
    fn plt_stub_resolved_through_got() {
        let img = two_module_image();
        let d = disassemble(&img);
        let util = img.symbol("util").unwrap();
        assert!(
            d.plt_targets.values().any(|&t| t == util),
            "PLT jump should resolve to util, got {:x?}",
            d.plt_targets
        );
    }

    #[test]
    fn jcc_target_starts_block() {
        let img = two_module_image();
        let d = disassemble(&img);
        let big = img.symbol("main").unwrap() + 4 * INSN_SIZE;
        assert!(d.block_at(big).is_some());
    }

    #[test]
    fn block_lookup_by_containing_address() {
        let img = two_module_image();
        let d = disassemble(&img);
        let main = img.symbol("main").unwrap();
        let bi = d.block_containing(main + INSN_SIZE).unwrap();
        assert_eq!(d.blocks[bi].start, main);
        assert!(d.block_containing(0x10).is_none());
    }

    #[test]
    fn terminators_recorded() {
        let img = two_module_image();
        let d = disassemble(&img);
        let has_ret = d.blocks.iter().any(|b| matches!(b.term, BlockEnd::Terminator(Insn::Ret)));
        let has_calli =
            d.blocks.iter().any(|b| matches!(b.term, BlockEnd::Terminator(Insn::CallInd { .. })));
        assert!(has_ret && has_calli);
    }

    #[test]
    fn modules_assigned_correctly() {
        let img = two_module_image();
        let d = disassemble(&img);
        let util = img.symbol("util").unwrap();
        let bi = d.block_at(util).unwrap();
        let m = d.blocks[bi].module;
        assert_eq!(img.modules()[m].name, "libc");
    }
}
