//! ITC-CFG artifact properties: serialisation, label persistence, and the
//! relationship between the AIA variants on every bundled server.

use fg_cfg::{aia_fine, aia_itc, aia_ocfg, Credit, ItcCfg, OCfg};

#[test]
fn itc_json_roundtrip_preserves_labels() {
    let w = fg_workloads::vsftpd();
    let ocfg = OCfg::build(&w.image);
    let mut itc = ItcCfg::build(&ocfg);
    // Label a few edges and attach TNT + grams.
    let edges: Vec<_> = itc.iter_edges().take(5).map(|(_, _, e)| e).collect();
    for (i, &e) in edges.iter().enumerate() {
        itc.set_high(e);
        itc.add_tnt(e, &[i % 2 == 0, true]);
    }
    itc.add_path_gram(edges[0], edges[1]);

    let json = serde_json::to_string(&itc).expect("serialise");
    let back: ItcCfg = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.node_count(), itc.node_count());
    assert_eq!(back.edge_count(), itc.edge_count());
    assert_eq!(back.high_credit_fraction(), itc.high_credit_fraction());
    for &e in &edges {
        assert_eq!(back.credit(e), Credit::High);
        assert_eq!(back.tnt(e), itc.tnt(e));
    }
    assert!(back.has_path_gram(edges[0], edges[1]));
    assert_eq!(back.path_gram_count(), 1);
}

#[test]
fn aia_ordering_holds_for_every_server() {
    for w in fg_workloads::servers() {
        let ocfg = OCfg::build(&w.image);
        let itc = ItcCfg::build(&ocfg);
        let (o, i, f) = (aia_ocfg(&ocfg), aia_itc(&itc), aia_fine(&ocfg));
        assert!(i >= o, "{}: ITC collapse derogates precision ({i} < {o})", w.name);
        assert!(f <= o, "{}: the fine-grained policy is at least as precise", w.name);
        assert!(o > 1.0, "{}: conservative sets are non-trivial", w.name);
    }
}

#[test]
fn every_ret_target_is_a_node() {
    // Sanity for call/return matching: every conservative return target must
    // be an IT-BB of the ITC-CFG (they are indirect-edge targets).
    let w = fg_workloads::exim();
    let ocfg = OCfg::build(&w.image);
    let itc = ItcCfg::build(&ocfg);
    for s in &ocfg.succs {
        if let fg_cfg::SuccSet::Ret(ts) = s {
            for &t in ts {
                assert!(itc.is_node(t), "ret target {t:#x} missing from ITC nodes");
            }
        }
    }
}

#[test]
fn targets_of_matches_edge_lookup() {
    let w = fg_workloads::tar();
    let ocfg = OCfg::build(&w.image);
    let itc = ItcCfg::build(&ocfg);
    for (from, to, e) in itc.iter_edges() {
        assert!(itc.targets_of(from).contains(&to));
        assert_eq!(itc.edge(from, to), Some(e));
    }
    assert_eq!(itc.targets_of(0xdead_beef), &[] as &[u64]);
}
