//! Attack payload construction against the vulnerable nginx-alike.
//!
//! Reproduces the §7.1.2 evaluation: "we artificially implant an obvious
//! vulnerability in nginx code and conduct one traditional ROP attack and
//! another SROP attack on it. These two attacks have different attack
//! routes, while both end up with writing arbitrary data into a specified
//! file" — plus the return-to-lib route (§7.1.1's library-pollution
//! discussion) and the history-flushing chains of Carlini et al. that the
//! `pkt_count ≥ 30` window defends against.
//!
//! All payloads exploit the unbounded copy in the server's `parse` routine:
//! bytes 32.. of the request payload overwrite the parser's return address
//! and become the attacker's stack.

use crate::gadgets::GadgetMap;
use fg_isa::image::Image;
use fg_isa::insn::regs::*;
use fg_workloads::servers::REQ_BUF;

/// Syscall numbers (attacker-side constants).
const SYS_WRITE: u64 = 2;
const SYS_EXECVE: u64 = 7;
const SYS_SIGRETURN: u64 = 8;

/// Offset of the overflow payload within process memory: the request's
/// payload bytes live at `REQ_BUF + 2`.
fn payload_va(offset: usize) -> u64 {
    (REQ_BUF as u64) + 2 + offset as u64
}

/// Wraps chain words (and trailing attacker data) into a request whose
/// payload smashes the parser's stack frame.
fn overflow_request(chain: &[u64], data: &[u8]) -> Vec<u8> {
    let mut payload = vec![b'A'; 32];
    for w in chain {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload.extend_from_slice(data);
    fg_workloads::request(1, &payload)
}

/// Traditional ROP: chain `pop`-gadgets to stage a `write(1, "HACKED!\n", 8)`
/// and a clean `exit(0)` — caught by FlowGuard at the `write` endpoint.
pub fn rop_write(image: &Image, g: &GadgetMap) -> Vec<u8> {
    let exit = image.symbol("exit").expect("libc exit");
    let msg = b"HACKED!\n";
    // Chain: pop r0; 2; pop r1; 1; pop r2,r3; &msg; 8; syscall;
    //        pop r1; 0; exit
    let chain_len = 11usize;
    let msg_va = payload_va(32 + chain_len * 8);
    let chain = [
        g.pop_reg(R0),
        SYS_WRITE,
        g.pop_reg(R1),
        1,
        *g.pop2.get(&(R2.index(), R3.index())).expect("pop r2,r3 gadget"),
        msg_va,
        msg.len() as u64,
        g.syscall(),
        g.pop_reg(R1),
        0,
        exit,
    ];
    debug_assert_eq!(chain.len(), chain_len);
    overflow_request(&chain, msg)
}

/// SROP: stage `sigreturn` via a syscall trampoline, with a forged signal
/// frame that context-switches into `execve("/bin/sh")` — caught at the
/// `sigreturn` endpoint.
pub fn srop_execve(_image: &Image, g: &GadgetMap) -> Vec<u8> {
    let syscall_gadget = g.syscall();
    let path = b"/bin/sh";
    // Chain: pop r0; SIGRETURN; syscall → kernel reads the frame at sp.
    let chain_head = [g.pop_reg(R0), SYS_SIGRETURN, syscall_gadget];
    // Forged frame: [pc, r0..r15].
    let frame_off = 32 + chain_head.len() * 8;
    let path_va = payload_va(frame_off + super::SIGFRAME_WORDS * 8);
    let mut frame = [0u64; super::SIGFRAME_WORDS];
    frame[0] = syscall_gadget; // pc: re-enter the syscall trampoline
    frame[1] = SYS_EXECVE; // r0
    frame[2] = path_va; // r1
    frame[3] = path.len() as u64; // r2
    frame[15] = (REQ_BUF as u64) + 0x800; // r14 = sp: scratch heap
    let mut chain = chain_head.to_vec();
    chain.extend_from_slice(&frame);
    overflow_request(&chain, path)
}

/// Return-to-lib: jump straight into `write_out` with attacker arguments —
/// no mid-function gadgets at all, just a library entry point.
pub fn ret_to_lib(image: &Image, g: &GadgetMap) -> Vec<u8> {
    let write_out = image.symbol("write_out").expect("libc write_out");
    let exit = image.symbol("exit").expect("libc exit");
    let msg = b"LIBPWN!\n";
    let chain_len = 9usize;
    let msg_va = payload_va(32 + chain_len * 8);
    let chain = [
        g.pop_reg(R1),
        msg_va,
        *g.pop2.get(&(R2.index(), R3.index())).expect("pop r2,r3 gadget"),
        msg.len() as u64,
        0,
        write_out,
        g.pop_reg(R1),
        0,
        exit,
    ];
    debug_assert_eq!(chain.len(), chain_len);
    overflow_request(&chain, msg)
}

/// History flushing (Carlini & Wagner, §7.1.1): prefix the hijack with
/// `n_links` NOP-like `ret` gadgets, then divert into a *legitimate* handler
/// whose own (fully legal) indirect transfers push the illegal pairs out of
/// a too-small checking window before the handler's `write` endpoint fires.
///
/// With the paper's `pkt_count = 30` the window still reaches the illegal
/// pairs and the attack is caught; with a tiny window it evades.
pub fn history_flush(image: &Image, g: &GadgetMap, n_links: usize) -> Vec<u8> {
    assert!(n_links <= 24, "payload budget allows at most 24 links");
    // A legitimate address-taken handler: entry 2 of the dispatch table —
    // the "time" handler, which performs a *fixed, small* number of legal
    // indirect transfers (VDSO call + returns) before its `write` endpoint.
    // That bounded legal suffix is exactly what a window shorter than the
    // suffix cannot see past.
    let table = image.symbol("handlers").expect("dispatch table symbol");
    let h2 = u64::from_le_bytes(
        image.read_bytes(table + 16, 8).expect("table entry").try_into().expect("8 bytes"),
    );
    let mut chain = Vec::with_capacity(n_links + 1);
    for i in 0..n_links {
        chain.push(g.rets[i % g.rets.len()]);
    }
    chain.push(h2);
    overflow_request(&chain, &[])
}

/// The Carlini & Wagner kBouncer evasion ("ROP is still dangerous"): a
/// chain built *only* from call-preceded, long, NOP-like gadgets.
///
/// * every chain link is `cp_wrapper+8` — the return site of a real call
///   (so the call-preceded heuristic passes) followed by 24 no-effect moves
///   (so the short-gadget-chain heuristic passes);
/// * the chain ends at the return site inside the server's "time" handler,
///   whose fall-through legitimately performs the attacker's `write`.
///
/// LBR-heuristic monitors (kBouncer/ROPecker) pass this flow; FlowGuard
/// still catches it because the gadget-to-gadget TIP pairs are not ITC-CFG
/// edges.
pub fn kbouncer_evasion(image: &Image, n_links: usize) -> Vec<u8> {
    assert!(n_links <= 24, "payload budget allows at most 24 links");
    let cp = image.symbol("cp_wrapper").expect("libc cp_wrapper");
    let rs = cp + 8; // call-preceded: insn before it is `call cp_noop`
                     // Return site inside handler 2 (after its `call gettimeofday`): the
                     // fall-through writes one byte and returns.
    let table = image.symbol("handlers").expect("dispatch table symbol");
    let h2 = u64::from_le_bytes(
        image.read_bytes(table + 16, 8).expect("table entry").try_into().expect("8 bytes"),
    );
    let rs2 = h2 + 8;
    let mut chain = vec![rs; n_links];
    chain.push(rs2);
    overflow_request(&chain, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    #[test]
    fn payloads_fit_the_length_byte() {
        let w = fg_workloads::nginx();
        let g = gadgets::find(&w.image);
        for p in [
            rop_write(&w.image, &g),
            srop_execve(&w.image, &g),
            ret_to_lib(&w.image, &g),
            history_flush(&w.image, &g, 12),
        ] {
            assert!(p.len() <= 257, "request {} bytes", p.len());
            assert!(p[1] as usize + 2 == p.len(), "length byte consistent");
            assert!(p[1] > 32, "payload actually overflows");
        }
    }

    #[test]
    #[should_panic(expected = "at most 24")]
    fn flush_budget_enforced() {
        let w = fg_workloads::nginx();
        let g = gadgets::find(&w.image);
        let _ = history_flush(&w.image, &g, 100);
    }
}
