//! # fg-attacks — code-reuse attacks against the simulated workloads
//!
//! The adversary of §3.3: remote, input-only, fully aware of the binary,
//! blocked from code injection by DEP. Attacks exploit the implanted
//! stack-overflow in the nginx-alike's parser and hijack control flow *for
//! real* inside the simulated machine:
//!
//! * [`gadgets`] — `pop/ret`, `syscall/ret`, and bare-`ret` discovery;
//! * [`payloads`] — traditional ROP, SROP (forged signal frame),
//!   return-to-lib, and history-flushing chains (§7.1.1–7.1.2);
//! * [`runner`] — executes payloads unprotected (attack must succeed) and
//!   under FlowGuard (attack must be killed at the endpoint).

#![deny(unsafe_code)]

pub mod gadgets;
pub mod payloads;
pub mod runner;

pub use fg_kernel::SIGFRAME_WORDS;
pub use gadgets::{find as find_gadgets, GadgetMap};
pub use payloads::{history_flush, kbouncer_evasion, ret_to_lib, rop_write, srop_execve};
pub use runner::{
    run_cfimon, run_kbouncer, run_protected, run_unprotected, trained_vulnerable_nginx,
    AttackResult,
};
