//! Attack execution harness: runs a payload against the vulnerable server
//! with and without FlowGuard, and reports what happened.

use fg_cpu::machine::{Machine, StopReason};
use fg_cpu::trace::{BtsUnit, LbrFilter, LbrUnit, TraceUnit};
use fg_isa::image::Image;
use fg_kernel::Kernel;
use flowguard::{CfimonLike, Deployment, FlowGuardConfig, KBouncerLike};
use std::sync::Arc;

/// What an attack run produced.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// How the process stopped.
    pub stop: StopReason,
    /// Whether FlowGuard reported a violation (always `false` unprotected).
    pub detected: bool,
    /// The endpoints at which violations were reported.
    pub endpoints: Vec<&'static str>,
    /// Bytes the process wrote (attack-goal evidence).
    pub output: Vec<u8>,
    /// `execve` paths the process requested (SROP goal evidence).
    pub execve: Vec<String>,
}

impl AttackResult {
    /// Whether the attacker's goal (writing data / spawning a shell) was
    /// reached.
    pub fn attack_succeeded(&self, marker: &[u8]) -> bool {
        self.output.windows(marker.len().max(1)).any(|w| w == marker)
            || self.execve.iter().any(|p| p == "/bin/sh")
    }
}

/// Runs `input` against the image with **no protection**.
pub fn run_unprotected(image: &Image, input: &[u8]) -> AttackResult {
    let mut m = Machine::new(image, 0x4000);
    let mut k = Kernel::with_input(input);
    let stop = m.run(&mut k, 50_000_000);
    AttackResult {
        stop,
        detected: false,
        endpoints: Vec::new(),
        output: k.output,
        execve: k.execve_log,
    }
}

/// Runs `input` under a trained FlowGuard deployment.
pub fn run_protected(deployment: &Deployment, input: &[u8], cfg: FlowGuardConfig) -> AttackResult {
    let mut p = deployment.launch(input, cfg);
    let stop = p.run(50_000_000);
    let endpoints: Vec<&'static str> =
        p.stats.snapshot().violations.iter().map(|v| v.endpoint).collect();
    AttackResult {
        stop,
        detected: p.kernel.violated(),
        endpoints,
        output: p.kernel.output,
        execve: p.kernel.execve_log,
    }
}

/// Runs `input` under the kBouncer-style LBR monitor.
pub fn run_kbouncer(image: &Image, input: &[u8]) -> AttackResult {
    let cr3 = 0x4000;
    let mut m = Machine::new(image, cr3);
    m.trace = TraceUnit::Lbr(LbrUnit::new(16, LbrFilter::indirect_only()));
    let mut k = Kernel::with_input(input);
    k.install_interceptor(Box::new(KBouncerLike::new(image.clone(), cr3)));
    let stop = m.run(&mut k, 200_000_000);
    AttackResult {
        stop,
        detected: k.violated(),
        endpoints: k.violations.clone(),
        output: k.output,
        execve: k.execve_log,
    }
}

/// Runs `input` under the CFIMon-style BTS monitor.
pub fn run_cfimon(image: &Image, input: &[u8]) -> AttackResult {
    let cr3 = 0x4000;
    let ocfg = Arc::new(fg_cfg::OCfg::build(image));
    let mut m = Machine::new(image, cr3);
    m.trace = TraceUnit::Bts(BtsUnit::new(1 << 16));
    let mut k = Kernel::with_input(input);
    k.install_interceptor(Box::new(CfimonLike::new(ocfg, cr3)));
    let stop = m.run(&mut k, 200_000_000);
    AttackResult {
        stop,
        detected: k.violated(),
        endpoints: k.violations.clone(),
        output: k.output,
        execve: k.execve_log,
    }
}

/// Builds the standard evaluation target: the vulnerable nginx-alike with a
/// FlowGuard deployment trained on benign traffic.
pub fn trained_vulnerable_nginx() -> (fg_workloads::Workload, Deployment) {
    let w = fg_workloads::nginx();
    let mut d = Deployment::analyze(&w.image);
    // Train on benign requests covering all handlers (short payloads only —
    // the vulnerability needs > 32 bytes to matter).
    let mut corpus = vec![w.default_input.clone()];
    for c in 0..8u8 {
        corpus.push(fg_workloads::request(c, b"benign-payload"));
    }
    d.train(&corpus);
    (w, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gadgets, payloads};
    use fg_kernel::SIGKILL;

    #[test]
    fn rop_attack_works_unprotected_and_is_caught_at_write() {
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let attack = payloads::rop_write(&w.image, &g);

        // Unprotected: the hijack genuinely reaches the attacker's write.
        let free = run_unprotected(&w.image, &attack);
        assert!(
            free.attack_succeeded(b"HACKED!"),
            "ROP chain must work without protection: {:?} out={:?}",
            free.stop,
            String::from_utf8_lossy(&free.output)
        );

        // Protected: killed at the write endpoint (§7.1.2).
        let guarded = run_protected(&d, &attack, FlowGuardConfig::default());
        assert!(guarded.detected, "FlowGuard must detect the ROP chain");
        assert_eq!(guarded.stop, StopReason::Killed(SIGKILL));
        assert!(guarded.endpoints.contains(&"write"), "caught at write: {:?}", guarded.endpoints);
        assert!(!guarded.attack_succeeded(b"HACKED!"), "goal must be prevented");
    }

    #[test]
    fn srop_attack_works_unprotected_and_is_caught_at_sigreturn() {
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let attack = payloads::srop_execve(&w.image, &g);

        let free = run_unprotected(&w.image, &attack);
        assert!(
            free.execve.iter().any(|p| p == "/bin/sh"),
            "SROP must reach execve unprotected: {:?}",
            free.stop
        );

        let guarded = run_protected(&d, &attack, FlowGuardConfig::default());
        assert!(guarded.detected);
        assert_eq!(guarded.stop, StopReason::Killed(SIGKILL));
        assert!(
            guarded.endpoints.contains(&"sigreturn"),
            "caught at sigreturn: {:?}",
            guarded.endpoints
        );
        assert!(guarded.execve.is_empty(), "shell must be prevented");
    }

    #[test]
    fn return_to_lib_is_caught() {
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let attack = payloads::ret_to_lib(&w.image, &g);

        let free = run_unprotected(&w.image, &attack);
        assert!(free.attack_succeeded(b"LIBPWN!"), "ret-to-lib works unprotected");

        let guarded = run_protected(&d, &attack, FlowGuardConfig::default());
        assert!(guarded.detected, "library-call laundering must be caught");
        assert!(!guarded.attack_succeeded(b"LIBPWN!"));
    }

    #[test]
    fn history_flush_caught_with_default_window() {
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let attack = payloads::history_flush(&w.image, &g, 12);
        let guarded = run_protected(&d, &attack, FlowGuardConfig::default());
        assert!(guarded.detected, "pkt_count = 30 window must reach back into the illegal pairs");
    }

    #[test]
    fn history_flush_evades_a_tiny_window() {
        // The §7.1.1 rationale, inverted: a degenerate configuration with a
        // 3-TIP window and no module-stride rule is flushable.
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let attack = payloads::history_flush(&w.image, &g, 12);
        let weak =
            FlowGuardConfig { pkt_count: 3, require_module_stride: false, ..Default::default() };
        let guarded = run_protected(&d, &attack, weak);
        assert!(
            !guarded.detected,
            "a tiny window is historically flushable — this is why pkt_count ≥ 30"
        );
    }

    #[test]
    fn kbouncer_evasion_beats_heuristics_but_not_flowguard() {
        // Carlini & Wagner's call-preceded long-gadget chain: the LBR
        // heuristics pass it, the CFG-grounded fast path does not.
        let (w, d) = trained_vulnerable_nginx();
        let attack = payloads::kbouncer_evasion(&w.image, 12);

        let kb = run_kbouncer(&w.image, &attack);
        assert!(
            !kb.detected,
            "call-preceded long gadgets must evade the kBouncer heuristics: {:?}",
            kb.endpoints
        );
        assert!(
            !kb.output.is_empty(),
            "the evasion chain reaches its write under the heuristic monitor"
        );

        let fg = run_protected(&d, &attack, FlowGuardConfig::default());
        assert!(fg.detected, "FlowGuard's ITC-CFG matching must catch the same chain");
    }

    #[test]
    fn pmi_fallback_catches_endpoint_laundering() {
        // A flush chain that diverts into the heavyweight GET handler: its
        // ~4000 legal transfers push the hijack out of any endpoint window,
        // evading syscall-endpoint checking entirely. The §7.1.2 fallback —
        // full-buffer checks at every trace-buffer PMI — still catches it,
        // because the PMI fires while the hijack is in the buffer.
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let table = w.image.symbol("handlers").expect("handlers");
        let h1 = u64::from_le_bytes(
            w.image.read_bytes(table + 8, 8).expect("entry").try_into().expect("8 bytes"),
        );
        let mut chain: Vec<u64> = (0..12).map(|i| g.rets[i % g.rets.len()]).collect();
        chain.push(h1);
        let mut payload = vec![b'A'; 32];
        for wd in &chain {
            payload.extend_from_slice(&wd.to_le_bytes());
        }
        let attack = fg_workloads::request(1, &payload);

        // Endpoint-only checking is laundered past.
        let endpoint_only = run_protected(&d, &attack, FlowGuardConfig::default());
        assert!(
            !endpoint_only.detected,
            "the laundering chain evades endpoint-window checking: {:?}",
            endpoint_only.endpoints
        );

        // PMI-fallback checking catches it.
        let pmi_cfg = FlowGuardConfig { pmi_endpoints: true, ..Default::default() };
        let guarded = run_protected(&d, &attack, pmi_cfg);
        assert!(guarded.detected, "the PMI full-buffer check must catch the hijack");
    }

    #[test]
    fn pmi_mode_has_no_false_positives() {
        let (w, d) = trained_vulnerable_nginx();
        let cfg = FlowGuardConfig { pmi_endpoints: true, ..Default::default() };
        let r = run_protected(&d, &w.default_input, cfg);
        assert!(!r.detected, "benign traffic passes PMI-endpoint mode: {:?}", r.endpoints);
        assert_eq!(r.stop, StopReason::Exited(0));
    }

    #[test]
    fn baseline_monitors_pass_benign_traffic() {
        let w = fg_workloads::nginx_patched();
        let kb = run_kbouncer(&w.image, &w.default_input);
        assert!(!kb.detected, "kBouncer: no false positives: {:?}", kb.endpoints);
        assert_eq!(kb.stop, StopReason::Exited(0));
        let cm = run_cfimon(&w.image, &w.default_input);
        assert!(!cm.detected, "CFIMon: no false positives: {:?}", cm.endpoints);
        assert_eq!(cm.stop, StopReason::Exited(0));
    }

    #[test]
    fn flight_recorder_snapshots_the_rop_detection() {
        // The forensic contract behind §7.1.2's attack reporting: a caught
        // hijack leaves a serialisable record of the failing edge, the raw
        // ToPA bytes around it, and the decoded packet run.
        let (w, d) = trained_vulnerable_nginx();
        let g = gadgets::find(&w.image);
        let attack = payloads::rop_write(&w.image, &g);
        let mut p = d.launch(&attack, FlowGuardConfig::default());
        let stop = p.run(50_000_000);
        assert_eq!(stop, StopReason::Killed(SIGKILL));
        let records = p.stats.flight_records();
        assert!(!records.is_empty(), "a detection must capture a flight record");
        let r = &records[0];
        assert!(r.edge.is_some(), "the violating edge is recorded: {}", r.detail);
        assert!(!r.topa_window.is_empty(), "ToPA window bytes are captured");
        assert!(!r.packets.is_empty(), "the decoded packet run is captured");
        assert!(
            r.packets.iter().any(|pkt| pkt.starts_with("TIP")),
            "the window decodes to real TIP packets: {:?}",
            &r.packets[..r.packets.len().min(4)]
        );

        // The record survives a JSON round-trip byte-for-byte.
        let json = serde_json::to_string(r).expect("serialise");
        let back: fg_trace::FlightRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(&back, r);
    }

    #[test]
    fn benign_traffic_still_passes_the_trained_deployment() {
        let (w, d) = trained_vulnerable_nginx();
        let r = run_protected(&d, &w.default_input, FlowGuardConfig::default());
        assert!(!r.detected, "no false positives on benign traffic");
        assert_eq!(r.stop, StopReason::Exited(0));
    }
}
