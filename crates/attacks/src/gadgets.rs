//! Gadget discovery: the attacker's half of the evaluation.
//!
//! The threat model (§3.3) grants the adversary full knowledge of the
//! binary and its libraries; this scanner finds the classic code-reuse
//! material — `pop rN; ret` register loaders, `syscall; ret` kernel
//! trampolines, and bare `ret` instructions usable as NOP-like chain links.

use fg_isa::image::Image;
use fg_isa::insn::{Insn, Reg, INSN_SIZE};
use std::collections::BTreeMap;

/// The gadget catalogue for one image.
#[derive(Debug, Clone, Default)]
pub struct GadgetMap {
    /// `pop rN; ret` gadgets, keyed by register index.
    pub pop: BTreeMap<usize, u64>,
    /// `pop rA; pop rB; ret` gadgets, keyed by `(A, B)`.
    pub pop2: BTreeMap<(usize, usize), u64>,
    /// A `syscall; ret` trampoline.
    pub syscall_ret: Option<u64>,
    /// Addresses of bare `ret` instructions (NOP-like chain links).
    pub rets: Vec<u64>,
}

impl GadgetMap {
    /// The `pop rN; ret` gadget for a register.
    ///
    /// # Panics
    ///
    /// Panics when the image offers no such gadget — the attack cannot be
    /// built, which is a test-setup error, not a runtime condition.
    pub fn pop_reg(&self, r: Reg) -> u64 {
        *self.pop.get(&r.index()).unwrap_or_else(|| panic!("no pop-{r} gadget in image"))
    }

    /// The syscall trampoline.
    ///
    /// # Panics
    ///
    /// Panics when the image has none.
    pub fn syscall(&self) -> u64 {
        self.syscall_ret.expect("no syscall;ret gadget in image")
    }
}

/// Scans every executable byte of the image for gadgets.
pub fn find(image: &Image) -> GadgetMap {
    let mut g = GadgetMap::default();
    for m in image.modules() {
        let mut va = m.base;
        while va < m.exec_end {
            if let Some(insn) = image.insn_at(va) {
                let next = image.insn_at(va + INSN_SIZE);
                let next2 = image.insn_at(va + 2 * INSN_SIZE);
                match (insn, next) {
                    (Insn::Pop { rd }, Some(Insn::Ret)) => {
                        g.pop.entry(rd.index()).or_insert(va);
                    }
                    (Insn::Pop { rd: a }, Some(Insn::Pop { rd: b })) => {
                        if let Some(Insn::Ret) = next2 {
                            g.pop2.entry((a.index(), b.index())).or_insert(va);
                        }
                    }
                    (Insn::Syscall, Some(Insn::Ret)) => {
                        g.syscall_ret.get_or_insert(va);
                    }
                    (Insn::Ret, _) => g.rets.push(va),
                    _ => {}
                }
            }
            va += INSN_SIZE;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_isa::insn::regs::*;

    #[test]
    fn libc_provides_the_classic_gadgets() {
        let w = fg_workloads::nginx();
        let g = find(&w.image);
        assert!(g.pop.contains_key(&R0.index()), "pop r0; ret (restore0)");
        assert!(g.pop.contains_key(&R1.index()), "pop r1; ret (restore1)");
        assert!(g.pop2.contains_key(&(R2.index(), R3.index())), "pop r2; pop r3; ret");
        assert!(g.syscall_ret.is_some(), "syscall; ret (do_syscall)");
        assert!(g.rets.len() > 10, "plenty of NOP-like ret links");
    }

    #[test]
    fn gadgets_live_in_code() {
        let w = fg_workloads::nginx();
        let g = find(&w.image);
        for &va in g.pop.values().chain(g.pop2.values()).chain(g.rets.iter()) {
            assert!(w.image.is_code(va));
        }
    }
}
