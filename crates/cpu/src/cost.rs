//! The calibrated trace/decode cost model.
//!
//! Simulated time is counted in **cycles**: every retired instruction costs
//! one cycle, and hardware tracing adds per-mechanism costs. The constants
//! are calibrated so that the *shape* of the paper's Table 1 and §2
//! measurements emerges from first principles (packet bytes, record sizes,
//! instructions walked), not hard-coded:
//!
//! * **IPT** ≈ 3% tracing overhead — `0.25` cycles per packet byte at the
//!   observed <1 bit/instruction compression;
//! * **BTS** ≈ 50× — each CoFI forces a 24-byte uncached store plus pipeline
//!   serialisation (`200` cycles per record at ~25% CoFI density);
//! * **LBR** <1% — register rotation is free;
//! * **packet-level decode** — cheap, proportional to trace bytes;
//! * **instruction-flow decode** ≈ 230× execution (geomean) — the software
//!   decoder re-walks every executed instruction and, dominantly, performs
//!   target association per TIP packet (the paper's §2 experiment; the
//!   per-TIP term reproduces the §7.2.2 slow/fast ≈ 60× micro-benchmark).
//!
//! All constants live in [`CostModel`] so ablation benches (e.g. the §6/§7.2.4
//! hardware-decoder suggestion) can zero individual terms.

use serde::{Deserialize, Serialize};

/// Cost-model constants, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per retired instruction (baseline execution).
    pub insn_cycles: f64,
    /// Cycles per IPT packet byte emitted (trace-side).
    pub ipt_byte_cycles: f64,
    /// Cycles per 24-byte BTS record stored.
    pub bts_record_cycles: f64,
    /// Cycles per LBR rotation (effectively free).
    pub lbr_rotate_cycles: f64,
    /// Cycles per byte for packet-level (fast) decoding.
    pub packet_scan_byte_cycles: f64,
    /// Cycles per instruction walked by the instruction-flow (slow) decoder.
    pub flow_decode_insn_cycles: f64,
    /// Additional cycles per TIP packet during instruction-flow decoding
    /// (target association dominates the software decoder's cost; this is
    /// what makes TIP-dense programs like h264ref decode far slower).
    pub flow_decode_tip_cycles: f64,
    /// Cycles per reconstructed branch event replayed by the slow path's
    /// sequential stitch pass (seam validation plus the shadow-stack feed).
    /// Orders of magnitude below `flow_decode_insn_cycles` — the stitch is
    /// what stays serial when the PSB-sharded decode fans out.
    #[serde(default = "default_stitch_cycles")]
    pub flow_stitch_event_cycles: f64,
    /// Cycles per ITC-CFG edge lookup in the fast path (binary search + the
    /// high-credit cache probe).
    pub edge_check_cycles: f64,
    /// Fixed cycles per syscall interception (table hook + CR3 compare).
    pub intercept_cycles: f64,
    /// Cycles to retarget the single CR3 filter at a context switch
    /// (trace flush + `WRMSR` sequence) — the §7.2.4 multi-process cost the
    /// paper's "more CFI-friendly filtering mechanisms" suggestion removes.
    pub trace_reconfig_cycles: f64,
}

impl CostModel {
    /// The calibrated defaults described in the module docs.
    pub fn calibrated() -> CostModel {
        CostModel {
            insn_cycles: 1.0,
            ipt_byte_cycles: 0.25,
            bts_record_cycles: 200.0,
            lbr_rotate_cycles: 0.0,
            packet_scan_byte_cycles: 3.0,
            flow_decode_insn_cycles: 50.0,
            flow_decode_tip_cycles: 10_000.0,
            flow_stitch_event_cycles: default_stitch_cycles(),
            edge_check_cycles: 100.0,
            intercept_cycles: 120.0,
            trace_reconfig_cycles: 3000.0,
        }
    }

    /// A variant modelling the paper's §6 hardware suggestions: a dedicated
    /// pattern-matching decoder makes packet-level decoding free, and
    /// flexible CR3 filtering removes the interception overhead for
    /// multi-process filtering.
    pub fn with_hardware_decoder(mut self) -> CostModel {
        self.packet_scan_byte_cycles = 0.0;
        self
    }
}

fn default_stitch_cycles() -> f64 {
    20.0
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::calibrated()
    }
}

/// Cycle accounting, split by phase the way Figure 5's breakdown is
/// ("trace", "decode", "check", "other").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleAccount {
    /// Baseline execution cycles.
    pub exec: f64,
    /// Tracing-side cycles (IPT/BTS/LBR).
    pub trace: f64,
    /// Decoding cycles (packet-level and/or instruction-flow).
    pub decode: f64,
    /// CFG matching / checking cycles.
    pub check: f64,
    /// Everything else (interception, upcalls).
    pub other: f64,
}

impl CycleAccount {
    /// Total cycles across phases.
    pub fn total(&self) -> f64 {
        self.exec + self.trace + self.decode + self.check + self.other
    }

    /// Overhead relative to bare execution, as a fraction (0.04 = 4%).
    ///
    /// # Panics
    ///
    /// Panics if no execution cycles were recorded.
    pub fn overhead(&self) -> f64 {
        assert!(self.exec > 0.0, "no execution cycles recorded");
        (self.total() - self.exec) / self.exec
    }

    /// Adds another account into this one.
    pub fn absorb(&mut self, other: &CycleAccount) {
        self.exec += other.exec;
        self.trace += other.trace;
        self.decode += other.decode;
        self.check += other.check;
        self.other += other.other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_defaults_are_sane() {
        let c = CostModel::calibrated();
        assert!(c.ipt_byte_cycles < 1.0, "IPT must be cheap per byte");
        assert!(c.bts_record_cycles > 100.0, "BTS must be expensive per record");
        assert_eq!(c.lbr_rotate_cycles, 0.0);
        assert!(c.flow_decode_tip_cycles > 1000.0, "slow decode dominates");
        assert_eq!(CostModel::default(), c);
    }

    #[test]
    fn hardware_decoder_zeroes_scan_cost() {
        let c = CostModel::calibrated().with_hardware_decoder();
        assert_eq!(c.packet_scan_byte_cycles, 0.0);
        assert_eq!(c.flow_decode_insn_cycles, CostModel::calibrated().flow_decode_insn_cycles);
    }

    #[test]
    fn account_totals_and_overhead() {
        let mut a = CycleAccount { exec: 100.0, trace: 3.0, decode: 1.0, check: 0.5, other: 0.5 };
        assert_eq!(a.total(), 105.0);
        assert!((a.overhead() - 0.05).abs() < 1e-9);
        a.absorb(&CycleAccount { exec: 100.0, ..Default::default() });
        assert_eq!(a.exec, 200.0);
    }

    #[test]
    #[should_panic(expected = "no execution cycles")]
    fn overhead_requires_execution() {
        let _ = CycleAccount::default().overhead();
    }
}
