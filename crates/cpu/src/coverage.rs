//! AFL-style edge coverage instrumentation.
//!
//! The paper's training phase runs the target "in QEMU with the
//! instrumentation logics implemented on top of it in user emulation mode"
//! (§4.3) to discover new state transitions. This module is that
//! instrumentation: the classic AFL shared-memory bitmap, with edges hashed
//! from `(prev_location >> 1) ^ cur_location` and hit counts bucketised so
//! that loop-count changes register as new coverage.

use serde::{Deserialize, Serialize};

/// Size of the coverage bitmap (AFL's default 64 KiB).
pub const MAP_SIZE: usize = 1 << 16;

/// An edge-coverage bitmap for one execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageMap {
    map: Vec<u8>,
    prev_loc: u64,
}

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> CoverageMap {
        CoverageMap { map: vec![0; MAP_SIZE], prev_loc: 0 }
    }

    /// Resets the map for a new execution.
    pub fn reset(&mut self) {
        self.map.iter_mut().for_each(|b| *b = 0);
        self.prev_loc = 0;
    }

    fn classify(hits: u8) -> u8 {
        // AFL's hit-count buckets: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+.
        match hits {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        }
    }

    fn loc_hash(va: u64) -> u64 {
        // Cheap multiplicative hash of the block address.
        va.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40
    }

    /// Records a transition to basic-block address `to`.
    pub fn record(&mut self, to: u64) {
        let cur = Self::loc_hash(to);
        let idx = ((self.prev_loc ^ cur) as usize) & (MAP_SIZE - 1);
        self.map[idx] = self.map[idx].saturating_add(1);
        self.prev_loc = cur >> 1;
    }

    /// The raw hit-count map.
    pub fn raw(&self) -> &[u8] {
        &self.map
    }

    /// Number of distinct edges hit.
    pub fn edges_hit(&self) -> usize {
        self.map.iter().filter(|&&b| b != 0).count()
    }

    /// Folds this execution's (bucketised) coverage into a persistent
    /// *virgin* map, returning `true` if any new bucket bit appeared —
    /// AFL's "interesting input" test.
    pub fn merge_into(&self, virgin: &mut VirginMap) -> bool {
        let mut new = false;
        for (i, &hits) in self.map.iter().enumerate() {
            if hits == 0 {
                continue;
            }
            let bucket = Self::classify(hits);
            if virgin.map[i] & bucket != bucket {
                virgin.map[i] |= bucket;
                new = true;
            }
        }
        new
    }
}

/// Accumulated coverage across the whole fuzzing campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirginMap {
    map: Vec<u8>,
}

impl Default for VirginMap {
    fn default() -> VirginMap {
        VirginMap::new()
    }
}

impl VirginMap {
    /// Creates an empty accumulator.
    pub fn new() -> VirginMap {
        VirginMap { map: vec![0; MAP_SIZE] }
    }

    /// Number of map cells with any coverage.
    pub fn cells_covered(&self) -> usize {
        self.map.iter().filter(|&&b| b != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_deterministic() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        for va in [0x40_0000u64, 0x40_0010, 0x40_0000, 0x50_0000] {
            a.record(va);
            b.record(va);
        }
        assert_eq!(a.raw(), b.raw());
        assert!(a.edges_hit() >= 3);
    }

    #[test]
    fn edge_direction_matters() {
        let mut ab = CoverageMap::new();
        ab.record(0x40_0000);
        ab.record(0x50_0000);
        let mut ba = CoverageMap::new();
        ba.record(0x50_0000);
        ba.record(0x40_0000);
        assert_ne!(ab.raw(), ba.raw(), "A→B and B→A are distinct edges");
    }

    #[test]
    fn virgin_map_detects_new_coverage_once() {
        let mut virgin = VirginMap::new();
        let mut cov = CoverageMap::new();
        cov.record(0x40_0000);
        cov.record(0x40_0010);
        assert!(cov.merge_into(&mut virgin), "first run is new");
        assert!(!cov.merge_into(&mut virgin), "same run adds nothing");
        assert!(virgin.cells_covered() > 0);
    }

    #[test]
    fn hit_count_buckets_detect_loop_changes() {
        let mut virgin = VirginMap::new();
        let mut once = CoverageMap::new();
        once.record(0x40_0000);
        once.record(0x40_0010);
        once.merge_into(&mut virgin);

        // Same edge, hit many times → different bucket → new coverage.
        let mut looped = CoverageMap::new();
        for _ in 0..20 {
            looped.record(0x40_0000);
            looped.record(0x40_0010);
        }
        assert!(looped.merge_into(&mut virgin), "loop-count change is interesting");
    }

    #[test]
    fn reset_clears_state() {
        let mut cov = CoverageMap::new();
        cov.record(0x40_0000);
        cov.reset();
        assert_eq!(cov.edges_hit(), 0);
    }

    #[test]
    fn classify_buckets() {
        assert_eq!(CoverageMap::classify(0), 0);
        assert_eq!(CoverageMap::classify(1), 1);
        assert_eq!(CoverageMap::classify(2), 2);
        assert_eq!(CoverageMap::classify(3), 4);
        assert_eq!(CoverageMap::classify(5), 8);
        assert_eq!(CoverageMap::classify(200), 128);
    }
}
