//! The CPU interpreter.
//!
//! Executes a linked [`Image`] inside an [`AddressSpace`] with a per-core
//! [`TraceUnit`] attached, accounting simulated cycles through the
//! [`CostModel`]. The interpreter is used in three roles:
//!
//! 1. **protected execution** — IPT tracing on, the kernel module
//!    intercepting syscalls (the runtime FlowGuard deployment);
//! 2. **QEMU-style emulation** — coverage instrumentation on, for the
//!    fuzzing/training phase;
//! 3. **ground truth** — the branch log records exactly what executed, which
//!    property tests compare against the decoded trace.
//!
//! Control-flow hijacks are *real* here: a stack overflow that overwrites a
//! return address genuinely diverts `ret`, and DEP faults on attempts to
//! execute injected code, forcing code-reuse attacks as in the paper.

use crate::cost::{CostModel, CycleAccount};
use crate::coverage::CoverageMap;
use crate::mem::{AddressSpace, MemFault};
use crate::trace::TraceUnit;
use fg_ipt::flow::BranchEvent;
use fg_isa::image::Image;
use fg_isa::insn::{CofiKind, Insn, Reg, Width, INSN_SIZE};
use std::fmt;

/// Architectural register state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: [u64; Reg::COUNT],
    /// Program counter.
    pub pc: u64,
    /// Signed three-way result of the last compare.
    pub flags: i64,
}

impl Cpu {
    /// Creates a CPU at `entry` with the stack pointer set.
    pub fn new(entry: u64, sp: u64) -> Cpu {
        let mut regs = [0; Reg::COUNT];
        regs[Reg::SP.index()] = sp;
        Cpu { regs, pc: entry, flags: 0 }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// The stack pointer.
    pub fn sp(&self) -> u64 {
        self.regs[Reg::SP.index()]
    }
}

/// Outcome of a syscall as decided by the handler (the simulated kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysOutcome {
    /// Continue executing the process.
    Continue,
    /// Process exited with the given code.
    Exit(i64),
    /// Process killed by the kernel with the given signal (e.g. 9 when
    /// FlowGuard detects a CFI violation).
    Kill(u32),
}

/// Execution context handed to the syscall handler.
///
/// Exposes the trace unit because FlowGuard's kernel module reads the ToPA
/// buffer *during* syscall interception.
pub struct SyscallCtx<'a> {
    /// Register state (the handler may rewrite `pc`, e.g. `sigreturn`).
    pub cpu: &'a mut Cpu,
    /// Process memory.
    pub mem: &'a mut AddressSpace,
    /// The core's trace unit.
    pub trace: &'a mut TraceUnit,
    /// The process CR3.
    pub cr3: u64,
    /// Extra cycles the handler wants accounted as "other" overhead.
    pub extra_cycles: &'a mut CycleAccount,
}

/// How often [`Machine::run`] offers the kernel a trace-poll slot: once
/// every this many retired instructions (when an IPT unit is attached).
/// This stands in for the slice of CPU a background trace consumer gets on
/// real hardware; FlowGuard's streaming mode drains the ToPA residue here
/// so syscall-time checks find an almost fully consumed buffer.
pub const TRACE_POLL_PERIOD: u64 = 64;

/// The simulated kernel's syscall entry point.
pub trait SyscallHandler {
    /// Handles the syscall whose number is in `r0` (arguments `r1`–`r5`),
    /// writing the result to `r0`.
    fn syscall(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome;

    /// Handles a performance-monitoring interrupt raised by the trace
    /// buffer (a ToPA `INT` region filled). The default acknowledges and
    /// continues; FlowGuard's PMI-endpoint mode runs a full flow check here.
    fn pmi(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome {
        if let Some(u) = ctx.trace.as_ipt_mut() {
            u.topa_mut().take_pmi();
        }
        SysOutcome::Continue
    }

    /// Periodic trace-poll slot, offered every [`TRACE_POLL_PERIOD`]
    /// retired instructions while an IPT unit is attached. Unlike
    /// [`SyscallHandler::pmi`] this cannot stop the process — it only lets
    /// a streaming consumer drain the trace concurrently with execution.
    /// The default does nothing.
    fn trace_poll(&mut self, _ctx: &mut SyscallCtx<'_>) {}
}

/// A no-op kernel: every syscall returns 0 except `exit` (number 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullKernel;

impl SyscallHandler for NullKernel {
    fn syscall(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome {
        if ctx.cpu.regs[0] == 0 {
            SysOutcome::Exit(ctx.cpu.regs[1] as i64)
        } else {
            ctx.cpu.regs[0] = 0;
            SysOutcome::Continue
        }
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `halt` executed.
    Halted,
    /// `exit` syscall.
    Exited(i64),
    /// Killed by the kernel (signal number).
    Killed(u32),
    /// Instruction budget exhausted.
    InsnLimit,
    /// Memory fault (segfault / DEP violation) — a crash.
    Fault(MemFault),
    /// Undecodable instruction reached.
    BadInsn { pc: u64 },
}

impl StopReason {
    /// Whether this is a crash (fuzzers treat these as findings).
    pub fn is_crash(&self) -> bool {
        matches!(self, StopReason::Fault(_) | StopReason::BadInsn { .. })
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Halted => write!(f, "halted"),
            StopReason::Exited(c) => write!(f, "exited({c})"),
            StopReason::Killed(s) => write!(f, "killed by signal {s}"),
            StopReason::InsnLimit => write!(f, "instruction limit reached"),
            StopReason::Fault(e) => write!(f, "fault: {e}"),
            StopReason::BadInsn { pc } => write!(f, "undecodable instruction at {pc:#x}"),
        }
    }
}

/// A single-core machine executing one process image.
#[derive(Debug)]
pub struct Machine {
    /// Register state.
    pub cpu: Cpu,
    /// Process memory.
    pub mem: AddressSpace,
    /// The core's hardware trace unit.
    pub trace: TraceUnit,
    /// The cost model for cycle accounting.
    pub cost: CostModel,
    /// The process CR3 (page-table base), used for trace filtering.
    pub cr3: u64,
    /// Cycle accounting, split by phase.
    pub account: CycleAccount,
    /// Retired instruction count.
    pub insns_retired: u64,
    /// Retired CoFI count (branch density statistics).
    pub cofi_retired: u64,
    /// Optional AFL-style coverage instrumentation.
    pub coverage: Option<CoverageMap>,
    /// Optional ground-truth branch log.
    pub branch_log: Option<Vec<BranchEvent>>,
    /// How often a trace-poll slot is offered, in retired instructions.
    /// Defaults to [`TRACE_POLL_PERIOD`] (the slice a *borrowed* poll slot
    /// gets); a dedicated consumer thread on its own core wakes more often
    /// and sets this lower ([`Machine::set_trace_poll_period`]).
    pub trace_poll_period: u64,
}

impl Machine {
    /// Creates a machine for a linked image with a fresh address space.
    /// The initial stack pointer leaves 4 KiB of argv/env headroom below
    /// the stack top.
    pub fn new(image: &Image, cr3: u64) -> Machine {
        let mem = AddressSpace::from_image(image);
        let cpu = Cpu::new(image.entry(), crate::mem::STACK_TOP - 4096);
        Machine {
            cpu,
            mem,
            trace: TraceUnit::Off,
            cost: CostModel::calibrated(),
            cr3,
            account: CycleAccount::default(),
            insns_retired: 0,
            cofi_retired: 0,
            coverage: None,
            branch_log: None,
            trace_poll_period: TRACE_POLL_PERIOD,
        }
    }

    /// Overrides the trace-poll cadence (clamped to at least 1): the
    /// wakeup clock of a trace consumer. [`TRACE_POLL_PERIOD`] models a
    /// consumer borrowing the traced core's poll slots; a dedicated
    /// consumer thread runs on its own core and wakes at a finer cadence.
    pub fn set_trace_poll_period(&mut self, period: u64) {
        self.trace_poll_period = period.max(1);
    }

    /// Turns on AFL-style coverage collection (the "QEMU instrumentation").
    pub fn enable_coverage(&mut self) -> &mut Machine {
        self.coverage = Some(CoverageMap::new());
        self
    }

    /// Turns on the ground-truth branch log.
    pub fn enable_branch_log(&mut self) -> &mut Machine {
        self.branch_log = Some(Vec::new());
        self
    }

    fn on_branch(&mut self, kind: CofiKind, from: u64, to: u64, taken: bool) {
        self.cofi_retired += 1;
        let c = self.trace.on_cofi(&self.cost, kind, from, to, taken, self.cr3);
        self.account.trace += c;
        if let Some(cov) = &mut self.coverage {
            cov.record(to);
        }
        if let Some(log) = &mut self.branch_log {
            let taken = matches!(kind, CofiKind::CondBranch).then_some(taken);
            log.push(BranchEvent { from, to, kind, taken });
        }
    }

    /// Runs until a stop condition, with an instruction budget.
    pub fn run(&mut self, kernel: &mut dyn SyscallHandler, max_insns: u64) -> StopReason {
        let start = self.insns_retired;
        loop {
            if self.insns_retired - start >= max_insns {
                return StopReason::InsnLimit;
            }
            match self.step(kernel) {
                Ok(None) => {}
                Ok(Some(stop)) => return stop,
                Err(fault) => return StopReason::Fault(fault),
            }
            // Deliver a pending trace-buffer PMI (ToPA INT region filled).
            if self.trace.as_ipt().is_some_and(|u| u.topa().pmi_pending()) {
                let mut extra = CycleAccount::default();
                let outcome = {
                    let mut ctx = SyscallCtx {
                        cpu: &mut self.cpu,
                        mem: &mut self.mem,
                        trace: &mut self.trace,
                        cr3: self.cr3,
                        extra_cycles: &mut extra,
                    };
                    kernel.pmi(&mut ctx)
                };
                self.account.absorb(&extra);
                match outcome {
                    SysOutcome::Continue => {}
                    SysOutcome::Exit(code) => return StopReason::Exited(code),
                    SysOutcome::Kill(sig) => return StopReason::Killed(sig),
                }
            }
            // Periodic trace-poll slot for the streaming consumer.
            if self.insns_retired.is_multiple_of(self.trace_poll_period)
                && self.trace.as_ipt().is_some()
            {
                let mut extra = CycleAccount::default();
                let mut ctx = SyscallCtx {
                    cpu: &mut self.cpu,
                    mem: &mut self.mem,
                    trace: &mut self.trace,
                    cr3: self.cr3,
                    extra_cycles: &mut extra,
                };
                kernel.trace_poll(&mut ctx);
                self.account.absorb(&extra);
            }
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the [`MemFault`] of a crashing access.
    pub fn step(
        &mut self,
        kernel: &mut dyn SyscallHandler,
    ) -> Result<Option<StopReason>, MemFault> {
        let pc = self.cpu.pc;
        let bytes = self.mem.fetch(pc)?;
        let Ok(insn) = Insn::decode(bytes, pc) else {
            return Ok(Some(StopReason::BadInsn { pc }));
        };
        self.insns_retired += 1;
        self.account.exec += self.cost.insn_cycles;
        let next = pc + INSN_SIZE;

        match insn {
            Insn::Nop => self.cpu.pc = next,
            Insn::Halt => return Ok(Some(StopReason::Halted)),
            Insn::MovImm { rd, imm } => {
                self.cpu.set_reg(rd, imm as i64 as u64);
                self.cpu.pc = next;
            }
            Insn::Mov { rd, rs } => {
                let v = self.cpu.reg(rs);
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next;
            }
            Insn::Alu { op, rd, rs } => {
                let v = op.apply(self.cpu.reg(rd), self.cpu.reg(rs));
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next;
            }
            Insn::AluImm { op, rd, imm } => {
                let v = op.apply(self.cpu.reg(rd), imm as i64 as u64);
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next;
            }
            Insn::Cmp { rs1, rs2 } => {
                self.cpu.flags = (self.cpu.reg(rs1) as i64) - (self.cpu.reg(rs2) as i64);
                self.cpu.pc = next;
            }
            Insn::CmpImm { rs, imm } => {
                self.cpu.flags = (self.cpu.reg(rs) as i64) - imm as i64;
                self.cpu.pc = next;
            }
            Insn::Load { w, rd, base, off } => {
                let va = self.cpu.reg(base).wrapping_add(off as i64 as u64);
                let v = match w {
                    Width::B8 => self.mem.read_u64(va)?,
                    Width::B1 => self.mem.read_u8(va)? as u64,
                };
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next;
            }
            Insn::Store { w, rs, base, off } => {
                let va = self.cpu.reg(base).wrapping_add(off as i64 as u64);
                let v = self.cpu.reg(rs);
                match w {
                    Width::B8 => self.mem.write_u64(va, v)?,
                    Width::B1 => self.mem.write_u8(va, v as u8)?,
                }
                self.cpu.pc = next;
            }
            Insn::Push { rs } => {
                let sp = self.cpu.sp() - 8;
                self.mem.write_u64(sp, self.cpu.reg(rs))?;
                self.cpu.set_reg(Reg::SP, sp);
                self.cpu.pc = next;
            }
            Insn::Pop { rd } => {
                let sp = self.cpu.sp();
                let v = self.mem.read_u64(sp)?;
                self.cpu.set_reg(rd, v);
                self.cpu.set_reg(Reg::SP, sp + 8);
                self.cpu.pc = next;
            }
            Insn::Jmp { target } => {
                self.on_branch(CofiKind::DirectJmp, pc, target, false);
                self.cpu.pc = target;
            }
            Insn::Jcc { cc, target } => {
                let taken = cc.eval(self.cpu.flags);
                let to = if taken { target } else { next };
                self.on_branch(CofiKind::CondBranch, pc, to, taken);
                self.cpu.pc = to;
            }
            Insn::JmpInd { rs } => {
                let to = self.cpu.reg(rs);
                self.on_branch(CofiKind::IndJmp, pc, to, false);
                self.cpu.pc = to;
            }
            Insn::Call { target } => {
                let sp = self.cpu.sp() - 8;
                self.mem.write_u64(sp, next)?;
                self.cpu.set_reg(Reg::SP, sp);
                self.on_branch(CofiKind::DirectCall, pc, target, false);
                self.cpu.pc = target;
            }
            Insn::CallInd { rs } => {
                let to = self.cpu.reg(rs);
                let sp = self.cpu.sp() - 8;
                self.mem.write_u64(sp, next)?;
                self.cpu.set_reg(Reg::SP, sp);
                self.on_branch(CofiKind::IndCall, pc, to, false);
                self.cpu.pc = to;
            }
            Insn::Ret => {
                let sp = self.cpu.sp();
                let to = self.mem.read_u64(sp)?;
                self.cpu.set_reg(Reg::SP, sp + 8);
                self.on_branch(CofiKind::Ret, pc, to, false);
                self.cpu.pc = to;
            }
            Insn::Syscall => {
                // FUP + TIP.PGD: tracing pauses for the kernel.
                self.cofi_retired += 1;
                let c =
                    self.trace.on_cofi(&self.cost, CofiKind::FarTransfer, pc, 0, false, self.cr3);
                self.account.trace += c;
                self.cpu.pc = next;
                let mut extra = CycleAccount::default();
                let outcome = {
                    let mut ctx = SyscallCtx {
                        cpu: &mut self.cpu,
                        mem: &mut self.mem,
                        trace: &mut self.trace,
                        cr3: self.cr3,
                        extra_cycles: &mut extra,
                    };
                    kernel.syscall(&mut ctx)
                };
                self.account.absorb(&extra);
                match outcome {
                    SysOutcome::Continue => {
                        // TIP.PGE at the resume address (the handler may have
                        // redirected pc, e.g. sigreturn). The branch log
                        // records the actual resume target — exactly what the
                        // flow decoder reconstructs from the PGE packet.
                        let c = self.trace.on_syscall_resume(&self.cost, self.cpu.pc, self.cr3);
                        self.account.trace += c;
                        if let Some(cov) = &mut self.coverage {
                            cov.record(self.cpu.pc);
                        }
                        if let Some(log) = &mut self.branch_log {
                            log.push(BranchEvent {
                                from: pc,
                                to: self.cpu.pc,
                                kind: CofiKind::FarTransfer,
                                taken: None,
                            });
                        }
                    }
                    // Terminating syscalls never resume: no PGE, no log entry
                    // (matching the decoder's view of the trace).
                    SysOutcome::Exit(code) => return Ok(Some(StopReason::Exited(code))),
                    SysOutcome::Kill(sig) => return Ok(Some(StopReason::Killed(sig))),
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::IptUnit;
    use fg_ipt::topa::Topa;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;
    use fg_isa::insn::regs::*;
    use fg_isa::insn::Cond;

    fn build(f: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        f(&mut a);
        Linker::new(a.finish().unwrap()).link().unwrap()
    }

    #[test]
    fn arithmetic_and_loop() {
        // Sum 1..=5 in r1.
        let img = build(|a| {
            a.movi(R0, 5);
            a.movi(R1, 0);
            a.label("loop");
            a.add(R1, R0);
            a.addi(R0, -1);
            a.cmpi(R0, 0);
            a.jcc(Cond::Gt, "loop");
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        assert_eq!(m.run(&mut NullKernel, 1000), StopReason::Halted);
        assert_eq!(m.cpu.regs[1], 15);
        assert_eq!(m.cofi_retired, 5);
        assert!(m.insns_retired > 10);
    }

    #[test]
    fn call_ret_roundtrip() {
        let img = build(|a| {
            a.call("f");
            a.halt();
            a.label("f");
            a.movi(R2, 99);
            a.ret();
        });
        let mut m = Machine::new(&img, 0x1000);
        assert_eq!(m.run(&mut NullKernel, 100), StopReason::Halted);
        assert_eq!(m.cpu.regs[2], 99);
    }

    #[test]
    fn indirect_call_through_table() {
        let img = build(|a| {
            a.lea(R1, "table");
            a.ld(R2, R1, 0);
            a.calli(R2);
            a.halt();
            a.label("f");
            a.movi(R3, 7);
            a.ret();
            a.data_ptrs("table", &["f"]);
        });
        let mut m = Machine::new(&img, 0x1000);
        assert_eq!(m.run(&mut NullKernel, 100), StopReason::Halted);
        assert_eq!(m.cpu.regs[3], 7);
    }

    #[test]
    fn stack_overflow_hijacks_return_for_real() {
        // f writes past its local buffer and overwrites its own return
        // address with &gadget; ret then lands in the gadget.
        let img = build(|a| {
            a.call("f");
            a.label("after");
            a.halt();
            a.label("f");
            // Overwrite [sp] (the return address) with &gadget.
            a.lea(R1, "gadget");
            a.st(R1, SP, 0);
            a.ret();
            a.label("gadget");
            a.movi(R5, 0x41);
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        m.enable_branch_log();
        assert_eq!(m.run(&mut NullKernel, 100), StopReason::Halted);
        assert_eq!(m.cpu.regs[5], 0x41, "gadget executed");
        // The ret's target is the gadget, not `after`.
        let log = m.branch_log.as_ref().unwrap();
        let ret = log.iter().find(|b| b.kind == CofiKind::Ret).unwrap();
        assert_eq!(ret.to, img.symbol("gadget").unwrap_or(0).max(ret.to));
    }

    #[test]
    fn dep_blocks_stack_execution() {
        // Jump to the stack → NX fault.
        let img = build(|a| {
            a.mov(R1, SP);
            a.jmpi(R1);
        });
        let mut m = Machine::new(&img, 0x1000);
        let stop = m.run(&mut NullKernel, 100);
        assert!(matches!(stop, StopReason::Fault(MemFault::NotExecutable { .. })), "{stop:?}");
        assert!(stop.is_crash());
    }

    #[test]
    fn syscall_exit_stops() {
        let img = build(|a| {
            a.movi(R0, 0); // exit
            a.movi(R1, 42);
            a.syscall();
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        assert_eq!(m.run(&mut NullKernel, 100), StopReason::Exited(42));
    }

    #[test]
    fn insn_limit_enforced() {
        let img = build(|a| {
            a.label("spin");
            a.jmp("spin");
        });
        let mut m = Machine::new(&img, 0x1000);
        assert_eq!(m.run(&mut NullKernel, 50), StopReason::InsnLimit);
        assert!(m.insns_retired <= 51);
    }

    #[test]
    fn traced_run_decodes_to_ground_truth() {
        // The IPT trace, fully decoded, must equal the machine's branch log.
        let img = build(|a| {
            a.movi(R0, 3);
            a.label("loop");
            a.call("work");
            a.addi(R0, -1);
            a.cmpi(R0, 0);
            a.jcc(Cond::Gt, "loop");
            a.halt();
            a.label("work");
            a.lea(R1, "table");
            a.ld(R2, R1, 0);
            a.calli(R2);
            a.ret();
            a.label("leaf");
            a.movi(R4, 1);
            a.ret();
            a.data_ptrs("table", &["leaf"]);
        });
        let mut m = Machine::new(&img, 0x2000);
        m.enable_branch_log();
        let mut unit = IptUnit::flowguard(0x2000, Topa::two_regions(65536).unwrap());
        unit.start(img.entry(), 0x2000);
        m.trace = TraceUnit::Ipt(unit);
        assert_eq!(m.run(&mut NullKernel, 10_000), StopReason::Halted);

        m.trace.as_ipt_mut().unwrap().flush();
        let bytes = m.trace.as_ipt().unwrap().trace_bytes();
        let flow = fg_ipt::flow::FlowDecoder::new(&img).decode(&bytes).unwrap();
        let log = m.branch_log.as_ref().unwrap();
        // Compare branch-for-branch, ignoring the syscall-less tail.
        assert_eq!(flow.branches.len(), log.len());
        for (got, want) in flow.branches.iter().zip(log.iter()) {
            assert_eq!(got.from, want.from);
            assert_eq!(got.to, want.to, "at {:#x}", want.from);
            assert_eq!(got.kind, want.kind);
        }
        assert!(m.account.trace > 0.0, "tracing cycles accounted");
        assert!(m.account.exec > 0.0);
    }

    #[test]
    fn ret_compressed_trace_decodes_to_ground_truth() {
        // With DisRETC = 0 matching returns become TNT bits; the decoder
        // mirrors the hardware call stack and still reconstructs exactly.
        let img = build(|a| {
            a.movi(R0, 4);
            a.label("loop");
            a.call("work");
            a.addi(R0, -1);
            a.cmpi(R0, 0);
            a.jcc(Cond::Gt, "loop");
            a.halt();
            a.label("work");
            a.lea(R1, "table");
            a.ld(R2, R1, 0);
            a.calli(R2);
            a.ret();
            a.label("leaf");
            a.movi(R4, 1);
            a.ret();
            a.data_ptrs("table", &["leaf"]);
        });
        let mut m = Machine::new(&img, 0x2000);
        m.enable_branch_log();
        let mut ctl = fg_ipt::msr::RtitCtl::flowguard_default();
        ctl.set_dis_retc(false); // enable RET compression
        let msrs = fg_ipt::msr::IptMsrs { ctl, cr3_match: 0x2000, ..Default::default() };
        let mut unit = IptUnit::with_msrs(msrs, Topa::two_regions(65536).unwrap());
        unit.start(img.entry(), 0x2000);
        m.trace = TraceUnit::Ipt(unit);
        assert_eq!(m.run(&mut NullKernel, 10_000), StopReason::Halted);
        m.trace.as_ipt_mut().unwrap().flush();
        let bytes = m.trace.as_ipt().unwrap().trace_bytes();

        // The compressed trace hides the returns from the TIP stream...
        let scan = fg_ipt::fast::scan(&bytes).unwrap();
        let log = m.branch_log.as_ref().unwrap();
        let rets = log.iter().filter(|b| b.kind == CofiKind::Ret).count();
        let tips_logged = log
            .iter()
            .filter(|b| matches!(b.kind, CofiKind::IndCall | CofiKind::IndJmp | CofiKind::Ret))
            .count();
        assert_eq!(scan.tip_count(), tips_logged - rets, "all returns compressed away");

        // ...but the compression-aware decoder reconstructs everything.
        let flow = fg_ipt::flow::FlowDecoder::with_ret_compression(&img).decode(&bytes).unwrap();
        assert_eq!(flow.branches.len(), log.len());
        for (got, want) in flow.branches.iter().zip(log.iter()) {
            assert_eq!((got.from, got.to, got.kind), (want.from, want.to, want.kind));
        }
    }

    #[test]
    fn tracing_overhead_is_small() {
        // IPT tracing overhead on a branchy loop stays in single digits —
        // Table 1's "Low (3%)".
        let img = build(|a| {
            a.movi(R0, 2000);
            a.label("loop");
            a.movi(R1, 1);
            a.movi(R2, 2);
            a.add(R1, R2);
            a.mov(R3, R1);
            a.addi(R3, 5);
            a.addi(R0, -1);
            a.cmpi(R0, 0);
            a.jcc(Cond::Gt, "loop");
            a.halt();
        });
        let mut m = Machine::new(&img, 0x2000);
        let mut unit = IptUnit::flowguard(0x2000, Topa::two_regions(65536).unwrap());
        unit.start(img.entry(), 0x2000);
        m.trace = TraceUnit::Ipt(unit);
        m.run(&mut NullKernel, 1_000_000);
        let overhead = m.account.trace / m.account.exec;
        assert!(overhead < 0.05, "IPT tracing overhead {overhead:.3} should be <5%");
        assert!(overhead > 0.0);
    }

    #[test]
    fn coverage_instrumentation_records_edges() {
        let img = build(|a| {
            a.movi(R0, 3);
            a.label("loop");
            a.addi(R0, -1);
            a.cmpi(R0, 0);
            a.jcc(Cond::Gt, "loop");
            a.halt();
        });
        let mut m = Machine::new(&img, 0x1000);
        m.enable_coverage();
        m.run(&mut NullKernel, 1000);
        assert!(m.coverage.as_ref().unwrap().edges_hit() > 0);
    }
}
