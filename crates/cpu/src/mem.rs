//! Process address spaces with segment permissions.
//!
//! The threat model (§3.3) assumes DEP/NX and read-only code pages are in
//! force: code segments are non-writable, and only code segments are
//! executable. Attacks in this reproduction therefore have to be *code
//! reuse* attacks, exactly as in the paper.

use fg_isa::image::Image;
use std::fmt;

/// Default stack top (grows downward).
pub const STACK_TOP: u64 = 0x7e10_0000;
/// Default stack size in bytes.
pub const STACK_SIZE: u64 = 0x10_0000;
/// Default heap base.
pub const HEAP_BASE: u64 = 0x6000_0000;
/// Default heap size in bytes.
pub const HEAP_SIZE: u64 = 0x40_0000;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Address not mapped by any segment.
    Unmapped { va: u64 },
    /// Write to a read-only segment.
    ReadOnly { va: u64 },
    /// Instruction fetch from a non-executable segment (DEP/NX).
    NotExecutable { va: u64 },
}

impl MemFault {
    /// The faulting address.
    pub fn va(&self) -> u64 {
        match *self {
            MemFault::Unmapped { va }
            | MemFault::ReadOnly { va }
            | MemFault::NotExecutable { va } => va,
        }
    }
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { va } => write!(f, "unmapped address {va:#x}"),
            MemFault::ReadOnly { va } => write!(f, "write to read-only address {va:#x}"),
            MemFault::NotExecutable { va } => write!(f, "execute from NX address {va:#x} (DEP)"),
        }
    }
}

impl std::error::Error for MemFault {}

#[derive(Debug, Clone)]
struct Segment {
    va: u64,
    bytes: Vec<u8>,
    writable: bool,
    executable: bool,
}

impl Segment {
    fn end(&self) -> u64 {
        self.va + self.bytes.len() as u64
    }

    fn contains(&self, va: u64) -> bool {
        va >= self.va && va < self.end()
    }
}

/// A process address space: image segments plus stack and heap.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    segs: Vec<Segment>,
}

impl AddressSpace {
    /// Builds an address space from a linked image, adding a stack segment
    /// at [`STACK_TOP`] and a heap at [`HEAP_BASE`].
    pub fn from_image(image: &Image) -> AddressSpace {
        let mut segs = Vec::new();
        for s in image.segments() {
            segs.push(Segment {
                va: s.va,
                bytes: s.bytes.to_vec(),
                writable: s.writable,
                executable: !s.writable,
            });
        }
        segs.push(Segment {
            va: STACK_TOP - STACK_SIZE,
            bytes: vec![0; STACK_SIZE as usize],
            writable: true,
            executable: false,
        });
        segs.push(Segment {
            va: HEAP_BASE,
            bytes: vec![0; HEAP_SIZE as usize],
            writable: true,
            executable: false,
        });
        AddressSpace { segs }
    }

    /// Maps an additional writable, non-executable segment.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing segment.
    pub fn map_anon(&mut self, va: u64, len: usize) {
        assert!(
            !self.segs.iter().any(|s| va < s.end() && va + len as u64 > s.va),
            "anonymous mapping overlaps an existing segment"
        );
        self.segs.push(Segment { va, bytes: vec![0; len], writable: true, executable: false });
    }

    fn seg(&self, va: u64) -> Result<&Segment, MemFault> {
        self.segs.iter().find(|s| s.contains(va)).ok_or(MemFault::Unmapped { va })
    }

    fn seg_mut(&mut self, va: u64) -> Result<&mut Segment, MemFault> {
        self.segs.iter_mut().find(|s| s.contains(va)).ok_or(MemFault::Unmapped { va })
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] for unmapped addresses.
    pub fn read_u8(&self, va: u64) -> Result<u8, MemFault> {
        let s = self.seg(va)?;
        Ok(s.bytes[(va - s.va) as usize])
    }

    /// Reads a little-endian 64-bit word (may not straddle segments).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] if any byte is unmapped.
    pub fn read_u64(&self, va: u64) -> Result<u64, MemFault> {
        let s = self.seg(va)?;
        let off = (va - s.va) as usize;
        let slice = s.bytes.get(off..off + 8).ok_or(MemFault::Unmapped { va })?;
        Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ReadOnly`] for code segments, [`MemFault::Unmapped`]
    /// otherwise.
    pub fn write_u8(&mut self, va: u64, v: u8) -> Result<(), MemFault> {
        let s = self.seg_mut(va)?;
        if !s.writable {
            return Err(MemFault::ReadOnly { va });
        }
        let off = (va - s.va) as usize;
        s.bytes[off] = v;
        Ok(())
    }

    /// Writes a little-endian 64-bit word (may not straddle segments).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ReadOnly`] or [`MemFault::Unmapped`].
    pub fn write_u64(&mut self, va: u64, v: u64) -> Result<(), MemFault> {
        let s = self.seg_mut(va)?;
        if !s.writable {
            return Err(MemFault::ReadOnly { va });
        }
        let off = (va - s.va) as usize;
        let slice = s.bytes.get_mut(off..off + 8).ok_or(MemFault::Unmapped { va })?;
        slice.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies bytes out of memory.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] if the range is not fully mapped in one
    /// segment.
    pub fn read_bytes(&self, va: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let s = self.seg(va)?;
        let off = (va - s.va) as usize;
        s.bytes.get(off..off + len).map(<[u8]>::to_vec).ok_or(MemFault::Unmapped { va })
    }

    /// Copies bytes into memory.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ReadOnly`] or [`MemFault::Unmapped`].
    pub fn write_bytes(&mut self, va: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let s = self.seg_mut(va)?;
        if !s.writable {
            return Err(MemFault::ReadOnly { va });
        }
        let off = (va - s.va) as usize;
        let slice = s.bytes.get_mut(off..off + bytes.len()).ok_or(MemFault::Unmapped { va })?;
        slice.copy_from_slice(bytes);
        Ok(())
    }

    /// Fetches an 8-byte instruction word, enforcing NX.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::NotExecutable`] when fetching from a data/stack
    /// segment (DEP), [`MemFault::Unmapped`] otherwise.
    pub fn fetch(&self, pc: u64) -> Result<[u8; 8], MemFault> {
        let s = self.seg(pc)?;
        if !s.executable {
            return Err(MemFault::NotExecutable { va: pc });
        }
        let off = (pc - s.va) as usize;
        let slice = s.bytes.get(off..off + 8).ok_or(MemFault::Unmapped { va: pc })?;
        Ok(slice.try_into().expect("8-byte slice"))
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> usize {
        self.segs.iter().map(|s| s.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_isa::asm::Asm;
    use fg_isa::image::Linker;

    fn space() -> AddressSpace {
        let mut a = Asm::new("app");
        a.export("main");
        a.label("main");
        a.halt();
        a.data_bytes("buf", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let img = Linker::new(a.finish().unwrap()).link().unwrap();
        AddressSpace::from_image(&img)
    }

    #[test]
    fn stack_and_heap_are_mapped_writable() {
        let mut m = space();
        m.write_u64(STACK_TOP - 8, 0xdead).unwrap();
        assert_eq!(m.read_u64(STACK_TOP - 8).unwrap(), 0xdead);
        m.write_u8(HEAP_BASE, 7).unwrap();
        assert_eq!(m.read_u8(HEAP_BASE).unwrap(), 7);
    }

    #[test]
    fn code_is_read_only_and_executable() {
        let mut m = space();
        let code = fg_isa::image::EXEC_BASE;
        assert!(m.fetch(code).is_ok());
        assert_eq!(m.write_u8(code, 0).unwrap_err(), MemFault::ReadOnly { va: code });
    }

    #[test]
    fn nx_prevents_stack_execution() {
        let m = space();
        let sp = STACK_TOP - 64;
        assert_eq!(m.fetch(sp).unwrap_err(), MemFault::NotExecutable { va: sp });
    }

    #[test]
    fn data_section_is_writable_not_executable() {
        let mut m = space();
        // Data starts after code+GOT; locate via image bytes: buf holds 1..8.
        let mut data_va = None;
        for va in fg_isa::image::EXEC_BASE..fg_isa::image::EXEC_BASE + 0x100 {
            if m.read_u8(va) == Ok(1) && m.read_u8(va + 1) == Ok(2) {
                data_va = Some(va);
                break;
            }
        }
        let va = data_va.expect("data found");
        m.write_u8(va, 9).unwrap();
        assert_eq!(m.read_u8(va).unwrap(), 9);
        assert!(matches!(m.fetch(va), Err(MemFault::NotExecutable { .. })));
    }

    #[test]
    fn unmapped_access_faults() {
        let m = space();
        assert_eq!(m.read_u8(0x10).unwrap_err(), MemFault::Unmapped { va: 0x10 });
        assert_eq!(m.read_u64(0x10).unwrap_err(), MemFault::Unmapped { va: 0x10 });
    }

    #[test]
    fn bulk_read_write_roundtrip() {
        let mut m = space();
        m.write_bytes(HEAP_BASE + 16, b"hello").unwrap();
        assert_eq!(m.read_bytes(HEAP_BASE + 16, 5).unwrap(), b"hello");
    }

    #[test]
    fn map_anon_extends_space() {
        let mut m = space();
        m.map_anon(0x5000_0000, 4096);
        m.write_u64(0x5000_0000, 1).unwrap();
        assert_eq!(m.read_u64(0x5000_0000).unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn map_anon_overlap_panics() {
        let mut m = space();
        m.map_anon(HEAP_BASE, 16);
    }

    #[test]
    fn fault_display_and_va() {
        let f = MemFault::NotExecutable { va: 0x123 };
        assert!(f.to_string().contains("DEP"));
        assert_eq!(f.va(), 0x123);
    }
}
