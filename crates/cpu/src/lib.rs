//! # fg-cpu — the simulated core: interpreter + hardware trace units
//!
//! Executes programs built with [`fg_isa`] and attaches the three hardware
//! control-flow tracing mechanisms the paper compares (Table 1):
//!
//! * [`trace::IptUnit`] — Intel Processor Trace (packet compression via
//!   `fg-ipt`, ToPA output, MSR-controlled CR3/CPL filtering);
//! * [`trace::BtsUnit`] — Branch Trace Store (full records, ~50× overhead);
//! * [`trace::LbrUnit`] — Last Branch Record (16/32-entry stack, cheap but
//!   short-sighted).
//!
//! The [`machine::Machine`] also hosts the AFL-style coverage hook
//! ([`coverage::CoverageMap`]) used by the fuzzing/training phase, and the
//! calibrated [`cost::CostModel`] that converts hardware events into
//! simulated cycles so the paper's overhead tables can be regenerated.

#![deny(unsafe_code)]

pub mod cost;
pub mod coverage;
pub mod machine;
pub mod mem;
pub mod trace;

pub use cost::{CostModel, CycleAccount};
pub use coverage::{CoverageMap, VirginMap};
pub use machine::{
    Cpu, Machine, NullKernel, StopReason, SysOutcome, SyscallCtx, SyscallHandler, TRACE_POLL_PERIOD,
};
pub use mem::{AddressSpace, MemFault};
pub use trace::{BtsRecord, BtsUnit, IptUnit, LbrFilter, LbrUnit, MultiIptUnit, TraceUnit};
