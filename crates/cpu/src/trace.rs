//! Per-core hardware trace units: IPT, BTS, and LBR.
//!
//! These are the three mechanisms of the paper's Table 1. Each receives the
//! same CoFI event stream from the interpreter and records it with its own
//! fidelity/cost trade-off:
//!
//! * **IPT** compresses through [`fg_ipt::encode::PacketEncoder`] into a
//!   ToPA buffer, honouring the `IA32_RTIT_*` MSR filters;
//! * **BTS** stores a full 24-byte from/to record for *every* transfer
//!   (high overhead, no decode needed);
//! * **LBR** rotates the most recent 16/32 from/to pairs through a register
//!   stack (cheap, but tiny history and coarse filtering).

use crate::cost::CostModel;
use fg_ipt::encode::PacketEncoder;
use fg_ipt::msr::IptMsrs;
use fg_ipt::topa::Topa;
use fg_isa::insn::CofiKind;
use serde::{Deserialize, Serialize};

/// A BTS branch record (from, to) — 24 bytes in hardware (from, to, flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtsRecord {
    /// Source address of the transfer.
    pub from: u64,
    /// Destination address.
    pub to: u64,
}

/// Branch Trace Store unit: full fidelity, no decoding, very high overhead.
#[derive(Debug, Clone, Default)]
pub struct BtsUnit {
    records: Vec<BtsRecord>,
    capacity: usize,
}

impl BtsUnit {
    /// Creates a BTS unit with a circular buffer of `capacity` records.
    pub fn new(capacity: usize) -> BtsUnit {
        BtsUnit { records: Vec::with_capacity(capacity.min(4096)), capacity }
    }

    /// Records a transfer.
    pub fn record(&mut self, from: u64, to: u64) {
        if self.records.len() == self.capacity {
            self.records.remove(0);
        }
        self.records.push(BtsRecord { from, to });
    }

    /// The recorded transfers, oldest first.
    pub fn records(&self) -> &[BtsRecord] {
        &self.records
    }
}

/// Which CoFI classes an LBR filter admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbrFilter {
    /// Record conditional branches.
    pub cond: bool,
    /// Record near returns.
    pub rets: bool,
    /// Record indirect jumps/calls.
    pub indirect: bool,
    /// Record direct jumps/calls.
    pub direct: bool,
}

impl LbrFilter {
    /// The filter the kBouncer/ROPecker line of work uses: indirect branches
    /// and returns only.
    pub fn indirect_only() -> LbrFilter {
        LbrFilter { cond: false, rets: true, indirect: true, direct: false }
    }

    /// Admit everything.
    pub fn all() -> LbrFilter {
        LbrFilter { cond: true, rets: true, indirect: true, direct: true }
    }

    /// Whether a CoFI class passes the filter.
    pub fn admits(&self, kind: CofiKind) -> bool {
        match kind {
            CofiKind::CondBranch => self.cond,
            CofiKind::Ret => self.rets,
            CofiKind::IndJmp | CofiKind::IndCall => self.indirect,
            CofiKind::DirectJmp | CofiKind::DirectCall => self.direct,
            CofiKind::FarTransfer | CofiKind::None => false,
        }
    }
}

/// Last Branch Record stack: 16 or 32 most recent pairs.
#[derive(Debug, Clone)]
pub struct LbrUnit {
    stack: Vec<BtsRecord>,
    depth: usize,
    filter: LbrFilter,
}

impl LbrUnit {
    /// Creates an LBR with the given depth (16 or 32 on real parts).
    pub fn new(depth: usize, filter: LbrFilter) -> LbrUnit {
        LbrUnit { stack: Vec::with_capacity(depth), depth, filter }
    }

    /// Records a transfer if the filter admits it.
    pub fn record(&mut self, kind: CofiKind, from: u64, to: u64) {
        if !self.filter.admits(kind) {
            return;
        }
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(BtsRecord { from, to });
    }

    /// The register stack, oldest first (at most `depth` entries —
    /// "it can only record 16 or 32 most recent branch pairs", §2).
    pub fn stack(&self) -> &[BtsRecord] {
        &self.stack
    }

    /// Configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Depth of the hardware RET-compression stack.
const RET_STACK_DEPTH: usize = 64;

/// The IPT unit: MSR file + packet encoder writing into a ToPA.
#[derive(Debug)]
pub struct IptUnit {
    /// The `IA32_RTIT_*` register file.
    pub msrs: IptMsrs,
    enc: PacketEncoder<Topa>,
    psb_period: u64,
    /// The hardware RET-compression stack (active when `DisRETC` is clear):
    /// a `ret` whose target matches the recorded call site compresses to a
    /// single taken-TNT bit instead of a TIP.
    ret_stack: Vec<u64>,
}

impl IptUnit {
    /// Creates an IPT unit with FlowGuard's §5.1 configuration: user-only
    /// CoFI tracing, CR3-filtered to `cr3`, ToPA output with two regions.
    pub fn flowguard(cr3: u64, topa: Topa) -> IptUnit {
        let msrs = IptMsrs {
            ctl: fg_ipt::msr::RtitCtl::flowguard_default(),
            cr3_match: cr3,
            ..Default::default()
        };
        IptUnit { msrs, enc: PacketEncoder::new(topa), psb_period: 512, ret_stack: Vec::new() }
    }

    /// Creates a unit with explicit MSRs (for non-FlowGuard configurations).
    pub fn with_msrs(msrs: IptMsrs, topa: Topa) -> IptUnit {
        IptUnit { msrs, enc: PacketEncoder::new(topa), psb_period: 1024, ret_stack: Vec::new() }
    }

    /// Sets the PSB cadence in trace bytes.
    pub fn set_psb_period(&mut self, bytes: u64) {
        self.psb_period = bytes;
    }

    /// Whether this unit traces the given context.
    pub fn active(&self, cpl_user: bool, cr3: u64) -> bool {
        self.msrs.should_trace(cpl_user, cr3) && !self.enc.sink().stopped()
    }

    /// Emits the trace-start PSB+ (also used for periodic re-sync).
    pub fn start(&mut self, ip: u64, cr3: u64) {
        self.enc.psb_plus(Some(ip), Some(cr3));
    }

    /// Total packet bytes emitted.
    pub fn bytes_emitted(&self) -> u64 {
        self.enc.bytes_emitted()
    }

    /// Flushes the internal TNT shift register to the ToPA — what clearing
    /// `TraceEn` does on real hardware. The kernel module calls this before
    /// reading the buffer at a checkpoint.
    pub fn flush(&mut self) {
        self.enc.flush_tnt();
    }

    /// Access to the ToPA buffer (what the kernel module reads at check
    /// time).
    pub fn topa(&self) -> &Topa {
        self.enc.sink()
    }

    /// Mutable access to the ToPA (PMI acknowledge).
    pub fn topa_mut(&mut self) -> &mut Topa {
        self.enc.sink_mut()
    }

    /// The retained trace as chronological borrowed region slices — the
    /// zero-copy view the engine's drain path consumes
    /// ([`Topa::segments`]). Only slice references are materialised.
    pub fn trace_segments(&self) -> Vec<&[u8]> {
        self.enc.sink().segments()
    }

    /// Copies the most recent `n` trace bytes into `out` — the bounded
    /// cold-window read ([`Topa::tail_into`]).
    pub fn trace_tail_into(&self, n: usize, out: &mut Vec<u8>) {
        self.enc.sink().tail_into(n, out);
    }

    /// The trace bytes in chronological order, assembled from the
    /// segmented view. A convenience for tests and cold consumers (slow
    /// path, flight records); runtime drains use [`IptUnit::trace_segments`]
    /// and never linearise.
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.trace_segments().concat()
    }

    fn maybe_psb(&mut self, next_ip: u64, cr3: u64) {
        if self.enc.bytes_since_psb() >= self.psb_period {
            self.enc.psb_plus(Some(next_ip), Some(cr3));
        }
    }
}

/// Encodes one CoFI event into an IPT unit (the Table 3 packet taxonomy),
/// returning the tracing cost in cycles. Shared by the single-process
/// [`TraceUnit::Ipt`] path and the per-CR3 routing of
/// [`TraceUnit::MultiIpt`].
fn ipt_on_cofi(
    u: &mut IptUnit,
    cost: &CostModel,
    kind: CofiKind,
    from: u64,
    to: u64,
    taken: bool,
    cr3: u64,
) -> f64 {
    if !u.active(true, cr3) || !u.msrs.ip_in_filter(from) {
        return 0.0;
    }
    let before = u.enc.bytes_emitted();
    let retc = !u.msrs.ctl.dis_retc();
    match kind {
        CofiKind::CondBranch => u.enc.tnt_bit(taken),
        CofiKind::IndCall | CofiKind::DirectCall if retc => {
            // Track the call for RET compression.
            if u.ret_stack.len() == RET_STACK_DEPTH {
                u.ret_stack.remove(0);
            }
            u.ret_stack.push(from + fg_isa::insn::INSN_SIZE);
            if kind == CofiKind::IndCall {
                u.enc.tip(to);
            }
        }
        CofiKind::Ret if retc => {
            // Compressed return: a matching target is one taken
            // TNT bit; a mismatch emits a full TIP.
            if u.ret_stack.last() == Some(&to) {
                u.ret_stack.pop();
                u.enc.tnt_bit(true);
            } else {
                u.ret_stack.pop();
                u.enc.tip(to);
            }
        }
        CofiKind::IndJmp | CofiKind::IndCall | CofiKind::Ret => u.enc.tip(to),
        CofiKind::FarTransfer => {
            u.enc.fup(from);
            u.enc.tip_pgd(None);
        }
        CofiKind::DirectJmp | CofiKind::DirectCall | CofiKind::None => {}
    }
    u.maybe_psb(to, cr3);
    (u.enc.bytes_emitted() - before) as f64 * cost.ipt_byte_cycles
}

/// Per-core multi-process IPT front-end — the §7.2.4 "configurable multi-CR3
/// filter" hardware extension made concrete.
///
/// One core-level MSR file admits a *set* of CR3 values
/// ([`IptMsrs::cr3_match_extra`]) and the packet stream is demultiplexed
/// into per-CR3 ToPA buffers, each a full [`IptUnit`] with its own encoder,
/// PSB cadence and RET-compression stack. A context switch therefore
/// reduces to updating the `current` selector: no TNT flush, no
/// `IA32_RTIT_CR3_MATCH` rewrite, no PSB+ resync, no
/// `trace_reconfig_cycles` charge — and each process's trace bytes are
/// bit-identical to what a dedicated single-process unit would have
/// produced.
#[derive(Debug, Default)]
pub struct MultiIptUnit {
    /// The core-level filter: `cr3_match` holds the first admitted CR3,
    /// `cr3_match_extra` the rest.
    msrs: IptMsrs,
    units: Vec<(u64, IptUnit)>,
    current: usize,
}

impl MultiIptUnit {
    /// Creates an empty multi-CR3 unit with FlowGuard's §5.1 CTL bits.
    pub fn new() -> MultiIptUnit {
        let msrs = IptMsrs { ctl: fg_ipt::msr::RtitCtl::flowguard_default(), ..Default::default() };
        MultiIptUnit { msrs, units: Vec::new(), current: 0 }
    }

    /// Admits a CR3 into the filter and allocates its private ToPA buffer.
    /// Returns `false` (and ignores the buffer) if the CR3 is already
    /// admitted.
    pub fn admit(&mut self, cr3: u64, topa: Topa) -> bool {
        if self.units.iter().any(|(c, _)| *c == cr3) {
            return false;
        }
        if self.units.is_empty() {
            self.msrs.cr3_match = cr3;
        } else {
            self.msrs.cr3_match_extra.push(cr3);
        }
        self.units.push((cr3, IptUnit::flowguard(cr3, topa)));
        true
    }

    /// Selects the running process. This is the entire context-switch cost
    /// under the multi-CR3 extension. Returns `false` if the CR3 was never
    /// admitted.
    pub fn set_current(&mut self, cr3: u64) -> bool {
        match self.units.iter().position(|(c, _)| *c == cr3) {
            Some(i) => {
                self.current = i;
                true
            }
            None => false,
        }
    }

    /// Restricts the core filter to a single CR3 — the stock-hardware
    /// fallback where the kernel module rewrites `IA32_RTIT_CR3_MATCH` at
    /// every context switch (§7.2.4's bottleneck). Clears
    /// `cr3_match_extra`; the per-CR3 output buffers stay (the module
    /// saves/restores `OUTPUT_BASE` alongside). The caller models the rest
    /// of the switch cost: TNT flush, PSB+ resync and
    /// `trace_reconfig_cycles`. Returns `false` if the CR3 was never
    /// admitted.
    pub fn restrict_to(&mut self, cr3: u64) -> bool {
        if !self.set_current(cr3) {
            return false;
        }
        self.msrs.cr3_match = cr3;
        self.msrs.cr3_match_extra.clear();
        true
    }

    /// The CR3 currently selected, if any process was admitted.
    pub fn current_cr3(&self) -> Option<u64> {
        self.units.get(self.current).map(|(c, _)| *c)
    }

    /// The admitted CR3 values, in admission order.
    pub fn admitted(&self) -> Vec<u64> {
        self.units.iter().map(|(c, _)| *c).collect()
    }

    /// The core-level MSR file (primary + extra CR3 filter values).
    pub fn msrs(&self) -> &IptMsrs {
        &self.msrs
    }

    /// The per-CR3 sub-unit, if admitted.
    pub fn unit(&self, cr3: u64) -> Option<&IptUnit> {
        self.units.iter().find(|(c, _)| *c == cr3).map(|(_, u)| u)
    }

    /// Mutable access to a per-CR3 sub-unit.
    pub fn unit_mut(&mut self, cr3: u64) -> Option<&mut IptUnit> {
        self.units.iter_mut().find(|(c, _)| *c == cr3).map(|(_, u)| u)
    }

    fn current_unit(&self) -> Option<&IptUnit> {
        self.units.get(self.current).map(|(_, u)| u)
    }

    fn current_unit_mut(&mut self) -> Option<&mut IptUnit> {
        self.units.get_mut(self.current).map(|(_, u)| u)
    }
}

/// A per-core trace unit configuration.
#[derive(Debug, Default)]
pub enum TraceUnit {
    /// Tracing disabled.
    #[default]
    Off,
    /// Intel Processor Trace.
    Ipt(IptUnit),
    /// Intel PT with the §7.2.4 multi-CR3 filter and per-CR3 ToPA buffers.
    MultiIpt(MultiIptUnit),
    /// Branch Trace Store.
    Bts(BtsUnit),
    /// Last Branch Record.
    Lbr(LbrUnit),
}

impl TraceUnit {
    /// Handles a CoFI event, returning the tracing cost in cycles.
    ///
    /// `next_ip` is the address of the next instruction to execute after the
    /// transfer (used for PSB sync points).
    pub fn on_cofi(
        &mut self,
        cost: &CostModel,
        kind: CofiKind,
        from: u64,
        to: u64,
        taken: bool,
        cr3: u64,
    ) -> f64 {
        match self {
            TraceUnit::Off => 0.0,
            TraceUnit::Ipt(u) => ipt_on_cofi(u, cost, kind, from, to, taken, cr3),
            TraceUnit::MultiIpt(m) => {
                // The core-level multi-CR3 filter decides admission; the
                // event's CR3 then selects the per-process ToPA buffer.
                if !m.msrs.should_trace(true, cr3) {
                    return 0.0;
                }
                match m.unit_mut(cr3) {
                    Some(u) => ipt_on_cofi(u, cost, kind, from, to, taken, cr3),
                    None => 0.0,
                }
            }
            TraceUnit::Bts(u) => {
                if kind == CofiKind::None {
                    return 0.0;
                }
                u.record(from, to);
                cost.bts_record_cycles
            }
            TraceUnit::Lbr(u) => {
                u.record(kind, from, to);
                cost.lbr_rotate_cycles
            }
        }
    }

    /// Handles syscall *return* to user mode (TIP.PGE for IPT).
    pub fn on_syscall_resume(&mut self, cost: &CostModel, resume_ip: u64, cr3: u64) -> f64 {
        let u = match self {
            TraceUnit::Ipt(u) => u,
            TraceUnit::MultiIpt(m) if m.msrs.should_trace(true, cr3) => match m.unit_mut(cr3) {
                Some(u) => u,
                None => return 0.0,
            },
            _ => return 0.0,
        };
        if !u.active(true, cr3) {
            return 0.0;
        }
        let before = u.enc.bytes_emitted();
        u.enc.tip_pge(resume_ip);
        u.maybe_psb(resume_ip, cr3);
        (u.enc.bytes_emitted() - before) as f64 * cost.ipt_byte_cycles
    }

    /// The IPT unit, if that is what is configured. For a multi-CR3 unit
    /// this is the *currently selected* process's sub-unit, so the machine
    /// run loop (PMI pending, trace-poll slots) and the engine's drain path
    /// work unchanged under fleet scheduling.
    pub fn as_ipt(&self) -> Option<&IptUnit> {
        match self {
            TraceUnit::Ipt(u) => Some(u),
            TraceUnit::MultiIpt(m) => m.current_unit(),
            _ => None,
        }
    }

    /// Mutable IPT access (current sub-unit for a multi-CR3 configuration).
    pub fn as_ipt_mut(&mut self) -> Option<&mut IptUnit> {
        match self {
            TraceUnit::Ipt(u) => Some(u),
            TraceUnit::MultiIpt(m) => m.current_unit_mut(),
            _ => None,
        }
    }

    /// The multi-CR3 unit, if that is what is configured.
    pub fn as_multi_ipt(&self) -> Option<&MultiIptUnit> {
        match self {
            TraceUnit::MultiIpt(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable multi-CR3 access (context-switch selector, admission).
    pub fn as_multi_ipt_mut(&mut self) -> Option<&mut MultiIptUnit> {
        match self {
            TraceUnit::MultiIpt(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_ipt::fast;

    fn ipt_unit(cr3: u64) -> TraceUnit {
        TraceUnit::Ipt(IptUnit::flowguard(cr3, Topa::two_regions(8192).unwrap()))
    }

    #[test]
    fn ipt_emits_table3_taxonomy() {
        let cost = CostModel::calibrated();
        let mut t = ipt_unit(0x1000);
        t.as_ipt_mut().unwrap().start(0x40_0000, 0x1000);
        // direct call: no output
        let c0 = t.on_cofi(&cost, CofiKind::DirectCall, 0x40_0000, 0x40_0100, false, 0x1000);
        assert_eq!(c0, 0.0);
        // conditional: TNT bit (buffered, zero bytes until flush)
        t.on_cofi(&cost, CofiKind::CondBranch, 0x40_0100, 0x40_0110, true, 0x1000);
        // indirect: TIP
        let c2 = t.on_cofi(&cost, CofiKind::IndCall, 0x40_0110, 0x50_0000, false, 0x1000);
        assert!(c2 > 0.0);
        let bytes = t.as_ipt().unwrap().trace_bytes();
        let scan = fast::scan(&bytes).unwrap();
        assert_eq!(scan.tip_count(), 1);
        assert_eq!(scan.tip_ips()[0], 0x50_0000);
        assert_eq!(scan.tnt_vec(0), vec![true]);
    }

    #[test]
    fn trace_segments_are_borrowed_and_chronological() {
        let cost = CostModel::calibrated();
        let mut t = ipt_unit(0x1000);
        t.as_ipt_mut().unwrap().start(0x40_0000, 0x1000);
        for i in 0..40u64 {
            t.on_cofi(&cost, CofiKind::IndCall, 0x40_0110 + i, 0x50_0000 + 8 * i, false, 0x1000);
        }
        let u = t.as_ipt().unwrap();
        // The segmented view concatenates to the linearised bytes, scans
        // identically, and borrows the ToPA regions directly.
        let segs = u.trace_segments();
        assert_eq!(segs.concat(), u.trace_bytes());
        let seg_scan = fast::scan_vectorized_segments(&segs).unwrap();
        let lin_scan = fast::scan(&u.trace_bytes()).unwrap();
        assert_eq!(seg_scan.tip_events(), lin_scan.tip_events());
        assert!(std::ptr::eq(
            segs.last().unwrap().as_ptr(),
            u.topa().regions()[0].contents().as_ptr()
        ));
        // Bounded tail read agrees with the linearised tail.
        let mut tail = Vec::new();
        u.trace_tail_into(16, &mut tail);
        let bytes = u.trace_bytes();
        assert_eq!(tail, bytes[bytes.len() - 16..]);
    }

    #[test]
    fn ipt_addr0_filter_suppresses_out_of_range_branches() {
        let cost = CostModel::calibrated();
        let mut msrs = fg_ipt::msr::IptMsrs {
            ctl: fg_ipt::msr::RtitCtl::flowguard_default(),
            cr3_match: 0x1000,
            addr0_a: 0x40_0000,
            addr0_b: 0x4f_ffff,
            ..Default::default()
        };
        msrs.ctl.set_addr0_filter(true);
        let mut t = TraceUnit::Ipt(IptUnit::with_msrs(msrs, Topa::two_regions(8192).unwrap()));
        // In range: traced.
        let c1 = t.on_cofi(&cost, CofiKind::IndJmp, 0x40_0100, 0x50_0000, false, 0x1000);
        assert!(c1 > 0.0);
        // Source outside the range: suppressed.
        let before = t.as_ipt().unwrap().bytes_emitted();
        let c2 = t.on_cofi(&cost, CofiKind::IndJmp, 0x1000_0000, 0x40_0000, false, 0x1000);
        assert_eq!(c2, 0.0);
        assert_eq!(t.as_ipt().unwrap().bytes_emitted(), before);
    }

    #[test]
    fn ipt_cr3_filter_suppresses_other_processes() {
        let cost = CostModel::calibrated();
        let mut t = ipt_unit(0x1000);
        let c = t.on_cofi(&cost, CofiKind::IndJmp, 0x40_0000, 0x50_0000, false, 0x2000);
        assert_eq!(c, 0.0);
        assert_eq!(t.as_ipt().unwrap().bytes_emitted(), 0);
    }

    #[test]
    fn ipt_syscall_group() {
        let cost = CostModel::calibrated();
        let mut t = ipt_unit(0x1000);
        t.as_ipt_mut().unwrap().start(0x40_0000, 0x1000);
        t.on_cofi(&cost, CofiKind::FarTransfer, 0x40_0010, 0, false, 0x1000);
        t.on_syscall_resume(&cost, 0x40_0018, 0x1000);
        let bytes = t.as_ipt().unwrap().trace_bytes();
        let scan = fast::scan(&bytes).unwrap();
        use fg_ipt::fast::Boundary;
        assert!(scan.boundaries.iter().any(|(_, b)| matches!(b, Boundary::Fup { ip: 0x40_0010 })));
        assert!(scan
            .boundaries
            .iter()
            .any(|(_, b)| matches!(b, Boundary::PauseEnd { ip: 0x40_0018 })));
    }

    #[test]
    fn ipt_periodic_psb() {
        let cost = CostModel::calibrated();
        let mut t = ipt_unit(0x1000);
        let u = t.as_ipt_mut().unwrap();
        u.set_psb_period(64);
        u.start(0x40_0000, 0x1000);
        for i in 0..100u64 {
            t.on_cofi(&cost, CofiKind::IndJmp, 0x40_0000 + i * 8, 0x50_0000 + i * 8, false, 0x1000);
        }
        let bytes = t.as_ipt().unwrap().trace_bytes();
        let psbs = fg_ipt::PacketParser::psb_offsets(&bytes);
        assert!(psbs.len() >= 3, "periodic PSB+ every ~64 bytes, got {}", psbs.len());
    }

    fn multi_unit(cr3s: &[u64]) -> TraceUnit {
        let mut m = MultiIptUnit::new();
        for &cr3 in cr3s {
            assert!(m.admit(cr3, Topa::two_regions(8192).unwrap()));
            m.unit_mut(cr3).unwrap().start(0x40_0000, cr3);
        }
        m.set_current(cr3s[0]);
        TraceUnit::MultiIpt(m)
    }

    #[test]
    fn multi_cr3_admission_and_selection() {
        let mut t = multi_unit(&[0x4000, 0x5000]);
        let m = t.as_multi_ipt_mut().unwrap();
        assert_eq!(m.admitted(), vec![0x4000, 0x5000]);
        assert_eq!(m.msrs().cr3_match, 0x4000);
        assert_eq!(m.msrs().cr3_match_extra, vec![0x5000]);
        assert!(!m.admit(0x5000, Topa::two_regions(8192).unwrap()), "double admit rejected");
        assert!(m.set_current(0x5000) && !m.set_current(0x7777));
        assert_eq!(m.current_cr3(), Some(0x5000));
        // as_ipt now resolves to the selected process's sub-unit.
        assert_eq!(t.as_ipt().unwrap().msrs.cr3_match, 0x5000);
    }

    #[test]
    fn multi_cr3_routes_by_event_cr3_and_filters_strangers() {
        let cost = CostModel::calibrated();
        let mut t = multi_unit(&[0x4000, 0x5000]);
        let c1 = t.on_cofi(&cost, CofiKind::IndJmp, 0x40_0100, 0x50_0000, false, 0x4000);
        let c2 = t.on_cofi(&cost, CofiKind::IndJmp, 0x40_0200, 0x50_0008, false, 0x5000);
        assert!(c1 > 0.0 && c2 > 0.0);
        // A CR3 outside the filter set produces nothing.
        let c3 = t.on_cofi(&cost, CofiKind::IndJmp, 0x40_0300, 0x50_0010, false, 0x6000);
        assert_eq!(c3, 0.0);
        let m = t.as_multi_ipt().unwrap();
        let scan_a = fast::scan(&m.unit(0x4000).unwrap().trace_bytes()).unwrap();
        let scan_b = fast::scan(&m.unit(0x5000).unwrap().trace_bytes()).unwrap();
        assert_eq!(scan_a.tip_ips(), &[0x50_0000], "per-CR3 demux");
        assert_eq!(scan_b.tip_ips(), &[0x50_0008]);
    }

    #[test]
    fn multi_cr3_interleaved_trace_is_bit_identical_to_solo() {
        // The whole point of the extension: context switches stop flushing
        // trace state, so an interleaved schedule yields each process the
        // exact byte stream a dedicated unit would have produced.
        let cost = CostModel::calibrated();
        let mut solo = ipt_unit(0x4000);
        solo.as_ipt_mut().unwrap().start(0x40_0000, 0x4000);
        let mut fleet = multi_unit(&[0x4000, 0x5000]);

        let events = [
            (CofiKind::CondBranch, 0x40_0100u64, 0x40_0110u64, true),
            (CofiKind::IndCall, 0x40_0110, 0x41_0000, false),
            (CofiKind::CondBranch, 0x41_0000, 0x41_0010, false),
            (CofiKind::Ret, 0x41_0010, 0x40_0118, false),
            (CofiKind::IndJmp, 0x40_0118, 0x42_0000, false),
        ];
        for (i, &(kind, from, to, taken)) in events.iter().enumerate() {
            solo.on_cofi(&cost, kind, from, to, taken, 0x4000);
            fleet.as_multi_ipt_mut().unwrap().set_current(0x4000);
            fleet.on_cofi(&cost, kind, from, to, taken, 0x4000);
            // Interleave a context switch + stranger activity between every
            // event of the process under test.
            fleet.as_multi_ipt_mut().unwrap().set_current(0x5000);
            fleet.on_cofi(
                &cost,
                CofiKind::IndJmp,
                0x43_0000 + i as u64 * 8,
                0x44_0000,
                false,
                0x5000,
            );
        }
        solo.as_ipt_mut().unwrap().flush();
        let m = fleet.as_multi_ipt_mut().unwrap();
        m.unit_mut(0x4000).unwrap().flush();
        assert_eq!(
            solo.as_ipt().unwrap().trace_bytes(),
            m.unit(0x4000).unwrap().trace_bytes(),
            "per-CR3 buffer must match a dedicated unit byte-for-byte"
        );
    }

    #[test]
    fn bts_records_everything_at_high_cost() {
        let cost = CostModel::calibrated();
        let mut t = TraceUnit::Bts(BtsUnit::new(1024));
        let c1 = t.on_cofi(&cost, CofiKind::DirectJmp, 1, 2, false, 0);
        let c2 = t.on_cofi(&cost, CofiKind::CondBranch, 3, 4, true, 0);
        assert_eq!(c1, cost.bts_record_cycles);
        assert_eq!(c2, cost.bts_record_cycles);
        if let TraceUnit::Bts(u) = &t {
            assert_eq!(u.records(), &[BtsRecord { from: 1, to: 2 }, BtsRecord { from: 3, to: 4 }]);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn bts_buffer_is_circular() {
        let mut u = BtsUnit::new(2);
        u.record(1, 1);
        u.record(2, 2);
        u.record(3, 3);
        assert_eq!(u.records().len(), 2);
        assert_eq!(u.records()[0].from, 2, "oldest evicted");
    }

    #[test]
    fn lbr_filters_and_rotates() {
        let cost = CostModel::calibrated();
        let mut t = TraceUnit::Lbr(LbrUnit::new(16, LbrFilter::indirect_only()));
        let c = t.on_cofi(&cost, CofiKind::CondBranch, 1, 2, true, 0);
        assert_eq!(c, 0.0);
        t.on_cofi(&cost, CofiKind::Ret, 3, 4, false, 0);
        t.on_cofi(&cost, CofiKind::DirectCall, 5, 6, false, 0);
        if let TraceUnit::Lbr(u) = &t {
            assert_eq!(u.stack().len(), 1, "only the ret admitted");
            assert_eq!(u.depth(), 16);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn lbr_depth_limit() {
        let mut u = LbrUnit::new(4, LbrFilter::all());
        for i in 0..10 {
            u.record(CofiKind::Ret, i, i + 1);
        }
        assert_eq!(u.stack().len(), 4, "only 16/32 most recent pairs in hardware; 4 here");
        assert_eq!(u.stack()[0].from, 6);
    }

    #[test]
    fn off_unit_is_free() {
        let cost = CostModel::calibrated();
        let mut t = TraceUnit::Off;
        assert_eq!(t.on_cofi(&cost, CofiKind::IndJmp, 1, 2, false, 0), 0.0);
        assert!(t.as_ipt().is_none());
    }
}
