//! Machine edge cases: undecodable instructions, handler-accounted cycles,
//! cost-model serialisation, trace-unit swapping.

use fg_cpu::machine::{Machine, NullKernel, StopReason, SysOutcome, SyscallCtx, SyscallHandler};
use fg_cpu::{CostModel, CycleAccount};
use fg_isa::asm::Asm;
use fg_isa::image::{Image, Linker};
use fg_isa::insn::regs::*;

fn build(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new("app");
    a.export("main");
    a.label("main");
    f(&mut a);
    Linker::new(a.finish().unwrap()).link().unwrap()
}

#[test]
fn jumping_into_the_got_is_a_dep_fault() {
    // The GOT is mapped but not executable: DEP faults the fetch.
    let mut lib = Asm::new("l");
    lib.export("f");
    lib.label("f");
    lib.ret();
    let img = {
        let mut a = Asm::new("app");
        a.import("f").needs("l");
        a.export("main");
        a.label("main");
        a.call("f");
        a.halt();
        Linker::new(a.finish().unwrap()).library(lib.finish().unwrap()).link().unwrap()
    };
    let got = img.executable().got_start;
    let mut m = Machine::new(&img, 0x1000);
    m.cpu.pc = got;
    let stop = m.run(&mut NullKernel, 10);
    assert!(stop.is_crash(), "{stop:?}");
    let _ = R1; // register constants imported for other tests
}

#[test]
fn handler_extra_cycles_are_absorbed() {
    struct Expensive;
    impl SyscallHandler for Expensive {
        fn syscall(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome {
            ctx.extra_cycles.other += 1234.0;
            ctx.extra_cycles.decode += 56.0;
            SysOutcome::Exit(0)
        }
    }
    let img = build(|a| {
        a.syscall();
        a.halt();
    });
    let mut m = Machine::new(&img, 0x1000);
    assert_eq!(m.run(&mut Expensive, 10), StopReason::Exited(0));
    assert_eq!(m.account.other, 1234.0);
    assert_eq!(m.account.decode, 56.0);
}

#[test]
fn cost_model_json_roundtrip() {
    let c = CostModel::calibrated();
    let json = serde_json::to_string(&c).expect("serialise");
    let back: CostModel = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back, c);
}

#[test]
fn account_serialises() {
    let a = CycleAccount { exec: 1.0, trace: 2.0, decode: 3.0, check: 4.0, other: 5.0 };
    let json = serde_json::to_string(&a).expect("serialise");
    let back: CycleAccount = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back, a);
    assert_eq!(back.total(), 15.0);
}

#[test]
fn sigreturn_style_pc_rewrite_reflected_in_pge() {
    // A handler that redirects pc; the machine must emit TIP.PGE at the
    // *new* pc and keep running there.
    struct Redirect(u64);
    impl SyscallHandler for Redirect {
        fn syscall(&mut self, ctx: &mut SyscallCtx<'_>) -> SysOutcome {
            ctx.cpu.pc = self.0;
            SysOutcome::Continue
        }
    }
    let img = build(|a| {
        a.syscall(); // 0
        a.halt(); // 8  (skipped by the redirect)
        a.label("landing"); // 16
        a.movi(R9, 0x77);
        a.halt();
    });
    let landing = img.entry() + 16;
    let mut m = Machine::new(&img, 0x1000);
    let mut unit = fg_cpu::IptUnit::flowguard(0x1000, fg_ipt::Topa::two_regions(4096).unwrap());
    unit.start(img.entry(), 0x1000);
    m.trace = fg_cpu::TraceUnit::Ipt(unit);
    assert_eq!(m.run(&mut Redirect(landing), 100), StopReason::Halted);
    assert_eq!(m.cpu.regs[9], 0x77);
    m.trace.as_ipt_mut().unwrap().flush();
    let bytes = m.trace.as_ipt().unwrap().trace_bytes();
    let scan = fg_ipt::fast::scan(&bytes).unwrap();
    use fg_ipt::fast::Boundary;
    assert!(
        scan.boundaries
            .iter()
            .any(|(_, b)| matches!(b, Boundary::PauseEnd { ip } if *ip == landing)),
        "PGE must carry the redirected pc: {:?}",
        scan.boundaries
    );
}
