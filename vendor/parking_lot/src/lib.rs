//! Minimal vendored replacement for `parking_lot`: a [`Mutex`] whose
//! `lock()` returns the guard directly (no poisoning), implemented over
//! `std::sync::Mutex`. Poisoned locks are transparently recovered — the
//! parking_lot behaviour callers rely on.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Acquires the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
