//! Minimal vendored replacement for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements just enough of `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the types in this workspace: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple and struct variants),
//! plus the `#[serde(default)]` and `#[serde(skip, default = "path")]`
//! field attributes.
//!
//! Instead of the real serde data model, the generated impls target the
//! vendored `serde::Value` tree (see `vendor/serde`), which `serde_json`
//! prints and parses. The wire format is the same externally-tagged layout
//! real serde uses for JSON, so artifacts remain human-readable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct FieldAttrs {
    /// `#[serde(skip)]` — never serialised, restored from the default.
    skip: bool,
    /// `#[serde(default)]` — use `Default::default()` when missing.
    default_trait: bool,
    /// `#[serde(default = "path")]` — call `path()` when missing.
    default_path: Option<String>,
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Clone, Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Clone, Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Clone, Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Skips a run of `#[...]` outer attributes starting at `*i`, feeding any
/// `#[serde(...)]` contents into `attrs`.
fn skip_attrs(tts: &[TokenTree], i: &mut usize, attrs: &mut FieldAttrs) {
    while *i + 1 < tts.len() {
        let TokenTree::Punct(p) = &tts[*i] else { break };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(g) = &tts[*i + 1] {
            parse_attr_group(g.stream(), attrs);
        }
        *i += 2;
    }
}

/// Parses the inside of one `#[...]` group, recording serde attributes.
fn parse_attr_group(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    if tts.first().and_then(ident_of).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(g)) = tts.get(1) else { return };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match ident_of(&inner[j]).as_deref() {
            Some("skip") => {
                attrs.skip = true;
                j += 1;
            }
            Some("default") => {
                let eq =
                    matches!(inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                if eq {
                    if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                        let s = lit.to_string();
                        attrs.default_path = Some(s.trim_matches('"').to_string());
                    }
                    j += 3;
                } else {
                    attrs.default_trait = true;
                    j += 1;
                }
            }
            _ => j += 1,
        }
    }
}

/// Skips `pub` / `pub(crate)` visibility tokens.
fn skip_vis(tts: &[TokenTree], i: &mut usize) {
    if tts.get(*i).and_then(ident_of).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tts.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Skips a type (or discriminant expression) up to a top-level `,`, which is
/// also consumed. Tracks `<...>` nesting; parenthesised/bracketed groups are
/// single token trees so their commas are invisible here.
fn skip_to_comma(tts: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tts.len() {
        if let TokenTree::Punct(p) = &tts[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < tts.len() {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&tts, &mut i, &mut attrs);
        skip_vis(&tts, &mut i);
        let Some(name) = tts.get(i).and_then(ident_of) else { break };
        i += 1; // field name
        i += 1; // ':'
        skip_to_comma(&tts, &mut i);
        out.push(Field { name, attrs });
    }
    out
}

/// Counts the comma-separated fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < tts.len() {
        // Each `skip_to_comma` consumes one field (attributes and visibility
        // tokens are swallowed along with the type tokens).
        skip_to_comma(&tts, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < tts.len() {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&tts, &mut i, &mut attrs);
        let Some(name) = tts.get(i).and_then(ident_of) else { break };
        i += 1;
        let kind = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_to_comma(&tts, &mut i);
        out.push(Variant { name, kind });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = FieldAttrs::default();
    skip_attrs(&tts, &mut i, &mut attrs);
    skip_vis(&tts, &mut i);
    let kind = tts.get(i).and_then(ident_of).expect("struct or enum keyword");
    i += 1;
    let name = tts.get(i).and_then(ident_of).expect("type name");
    i += 1;
    if matches!(tts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving {name})");
    }
    match kind.as_str() {
        "struct" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            _ => panic!("malformed enum {name}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "o.push(({n:?}.to_string(), serde::Serialize::to_value(&self.{n})));",
                    n = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\
                   fn to_value(&self) -> serde::Value {{\
                     let mut o: Vec<(String, serde::Value)> = Vec::new();\
                     {pushes}\
                     serde::Value::Object(o)\
                   }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> =
                    (0..*arity).map(|k| format!("serde::Serialize::to_value(&self.{k})")).collect();
                format!("serde::Value::Array(vec![{}])", elems.join(","))
            };
            format!(
                "impl serde::Serialize for {name} {{\
                   fn to_value(&self) -> serde::Value {{ {body} }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\
               fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str({vn:?}.to_string()),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(a0) => serde::Value::Object(vec![({vn:?}.to_string(), \
                         serde::Serialize::to_value(a0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("a{k}")).collect();
                        let elems: Vec<String> =
                            (0..*n).map(|k| format!("serde::Serialize::to_value(a{k})")).collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => serde::Value::Object(vec![({vn:?}.to_string(), \
                             serde::Value::Array(vec![{e}]))]),",
                            b = binds.join(","),
                            e = elems.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "fo.push(({n:?}.to_string(), serde::Serialize::to_value({n})));",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{\
                               let mut fo: Vec<(String, serde::Value)> = Vec::new();\
                               {p}\
                               serde::Value::Object(vec![({vn:?}.to_string(), serde::Value::Object(fo))])\
                             }},",
                            b = binds.join(","),
                            p = pushes.join("")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\
                   fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\
                 }}"
            )
        }
    }
}

fn named_field_exprs(fields: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        if f.attrs.skip {
            if let Some(p) = &f.attrs.default_path {
                out.push_str(&format!("{n}: {p}(),"));
            } else {
                out.push_str(&format!("{n}: ::core::default::Default::default(),"));
            }
        } else if let Some(p) = &f.attrs.default_path {
            out.push_str(&format!("{n}: serde::field_or_else({obj}, {n:?}, {p})?,"));
        } else if f.attrs.default_trait {
            out.push_str(&format!("{n}: serde::field_or_default({obj}, {n:?})?,"));
        } else {
            out.push_str(&format!("{n}: serde::field({obj}, {n:?})?,"));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = named_field_exprs(fields, "o");
            let uses_obj = fields.iter().any(|f| !f.attrs.skip);
            let (arg, obj_binding) = if uses_obj {
                ("v", format!("let o = serde::expect_object(v, {name:?})?;"))
            } else {
                ("_v", String::new())
            };
            format!(
                "impl serde::Deserialize for {name} {{\
                   fn from_value({arg}: &serde::Value) -> Result<Self, serde::DeError> {{\
                     {obj_binding}\
                     Ok({name} {{ {inits} }})\
                   }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(serde::Deserialize::from_value(v)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("serde::Deserialize::from_value(&a[{k}])?"))
                    .collect();
                format!(
                    "let a = serde::expect_array(v, {name:?})?;\
                     if a.len() != {arity} {{\
                       return Err(serde::DeError::new(format!(\
                         \"expected {arity} elements for {name}, got {{}}\", a.len())));\
                     }}\
                     Ok({name}({e}))",
                    e = elems.join(",")
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\
                   fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\
               fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {{ Ok({name}) }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&a[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\
                               let a = serde::expect_array(inner, {vn:?})?;\
                               if a.len() != {n} {{\
                                 return Err(serde::DeError::new(format!(\
                                   \"expected {n} elements for {name}::{vn}, got {{}}\", a.len())));\
                               }}\
                               Ok({name}::{vn}({e}))\
                             }},",
                            e = elems.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits = named_field_exprs(fields, "fo");
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\
                               let fo = serde::expect_object(inner, {vn:?})?;\
                               Ok({name}::{vn} {{ {inits} }})\
                             }},"
                        ));
                    }
                }
            }
            let inner_bind = if tagged_arms.is_empty() { "_inner" } else { "inner" };
            format!(
                "impl serde::Deserialize for {name} {{\
                   fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\
                     if let serde::Value::Str(s) = v {{\
                       return match s.as_str() {{\
                         {unit_arms}\
                         other => Err(serde::DeError::new(format!(\
                           \"unknown unit variant `{{other}}` of {name}\"))),\
                       }};\
                     }}\
                     let (tag, {inner_bind}) = serde::expect_variant(v, {name:?})?;\
                     match tag {{\
                       {tagged_arms}\
                       other => Err(serde::DeError::new(format!(\
                         \"unknown variant `{{other}}` of {name}\"))),\
                     }}\
                   }}\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}
