//! Minimal vendored replacement for the `rand` crate (0.8 call surface).
//!
//! Implements exactly what this workspace uses: `StdRng` (a deterministic
//! xoshiro256++ generator), `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen`, `gen_range` (over `Range`/`RangeInclusive` of
//! the primitive integer types) and `gen_bool`. Stream quality is more than
//! adequate for fuzzing and property tests; it is NOT cryptographic.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from the full domain of its type.
pub trait RandValue {
    /// Draws one value.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_rand_int {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_rand_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandValue for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandValue for f64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range usable with [`Rng::gen_range`] to sample a `T`.
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = rng.next_u64() % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 ranges need widening care (span can be 2^64); no call site samples the
// full domain, so a modular span is sufficient.
impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + rng.next_u64() % span
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.next_u64() % (hi - lo + 1)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred primitive type.
    fn gen<T: RandValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::rand(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::rand(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i32 = r.gen_range(-35..=35);
            assert!((-35..=35).contains(&x));
            let y = r.gen_range(0..7u8);
            assert!(y < 7);
            let z = r.gen_range(1..=16);
            assert!((1..=16).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((1_600..2_400).contains(&hits), "p=0.2 over 10k draws: {hits}");
    }
}
