//! Minimal vendored replacement for `criterion`: enough of the API for the
//! workspace's `harness = false` bench targets to build and run under
//! `cargo bench`. Each benchmark runs a short warm-up followed by
//! `sample_size` timed iterations and prints the mean wall-clock time —
//! no statistics, plots, or baselines.

use std::time::Instant;

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Times `sample` iterations of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed().as_secs_f64();
        self.samples.push(total / self.iters as f64);
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), iters: sample_size.max(1) as u64 };
    f(&mut b);
    let mean = if b.samples.is_empty() {
        0.0
    } else {
        b.samples.iter().sum::<f64>() / b.samples.len() as f64
    };
    println!("bench {name:<40} {}/iter", human_time(mean));
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput annotation (printed only).
    pub fn throughput(&mut self, t: Throughput) {
        let label = match t {
            Throughput::Elements(n) => format!("{n} elem/iter"),
            Throughput::Bytes(n) => format!("{n} B/iter"),
        };
        println!("group {} ({label})", self.name);
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (criterion-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
