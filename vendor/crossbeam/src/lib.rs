//! Minimal vendored replacement for `crossbeam`: just `thread::scope`,
//! implemented over `std::thread::scope`. The crossbeam API differences the
//! workspace relies on are preserved: the spawn closure receives the scope
//! as an argument, and `scope` returns a `thread::Result`.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// A scope handle usable to spawn borrowed-data threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or its
        /// panic payload).
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Returns any panic that escaped the scope (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("joins")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }
}
