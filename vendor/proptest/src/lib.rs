//! Minimal vendored replacement for the `proptest` crate.
//!
//! Covers the surface this workspace uses: the `proptest!` macro with
//! optional `#![proptest_config(...)]`, `any::<T>()`, integer-range and
//! tuple strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! No shrinking: a failing case panics immediately with its case number and
//! the generator seed, which is deterministic per (test name, case index),
//! so failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// A generator of random values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A strategy producing `Vec`s of `elem`-generated values with a length
    /// drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.start..self.len.end)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Builds the deterministic per-case generator for `proptest!` (exposed for
/// the macro; not part of the public surface).
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)) => {};
    (@with ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest case {case}/{total} of `{name}` failed:\n{message}",
                        case = case,
                        total = config.cases,
                        name = stringify!($name),
                        message = message
                    );
                }
            }
        }
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing proptest case with a message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case if the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!($($fmt)+));
                }
            }
        }
    };
}
