//! Minimal vendored replacement for the `serde` crate.
//!
//! The build environment has no access to crates.io, so serialisation runs
//! through a small in-memory [`Value`] tree instead of serde's visitor data
//! model. [`Serialize`]/[`Deserialize`] here are *not* API-compatible with
//! real serde — they cover exactly what this workspace uses: derived impls
//! on non-generic structs/enums (see `vendor/serde_derive`) plus the
//! container/primitive impls below. `vendor/serde_json` prints and parses
//! the `Value` tree as ordinary JSON, so artifacts stay interoperable and
//! human-readable.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0 when produced by the parser).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialisation error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a document tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value does not fit.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// -- helpers used by the derive-generated code ------------------------------

/// Asserts `v` is an object, returning its entries.
pub fn expect_object<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Object(o) => Ok(o),
        other => Err(DeError::new(format!("expected object for {what}, got {}", kind_of(other)))),
    }
}

/// Asserts `v` is an array, returning its elements.
pub fn expect_array<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Array(a) => Ok(a),
        other => Err(DeError::new(format!("expected array for {what}, got {}", kind_of(other)))),
    }
}

/// Asserts `v` is a single-entry object `{tag: inner}` (an externally tagged
/// enum variant), returning the pair.
pub fn expect_variant<'a>(v: &'a Value, what: &str) -> Result<(&'a str, &'a Value), DeError> {
    match v {
        Value::Object(o) if o.len() == 1 => Ok((o[0].0.as_str(), &o[0].1)),
        other => Err(DeError::new(format!(
            "expected single-variant object for {what}, got {}",
            kind_of(other)
        ))),
    }
}

/// Looks up and deserialises a required object field.
pub fn field<T: Deserialize>(o: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match o.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("in field `{key}`: {e}")))
        }
        None => Err(DeError::new(format!("missing field `{key}`"))),
    }
}

/// Like [`field`], but a missing key yields `T::default()`.
pub fn field_or_default<T: Deserialize + Default>(
    o: &[(String, Value)],
    key: &str,
) -> Result<T, DeError> {
    match o.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("in field `{key}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

/// Like [`field`], but a missing key yields `make()`.
pub fn field_or_else<T: Deserialize>(
    o: &[(String, Value)],
    key: &str,
    make: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match o.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("in field `{key}`: {e}")))
        }
        None => Ok(make()),
    }
}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) => "integer",
        Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

// -- primitive impls --------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {}",
                            kind_of(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        DeError::new(format!("integer {n} out of range for i64"))
                    })?,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {}",
                            kind_of(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::new(format!("expected number, got {}", kind_of(other)))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", kind_of(other)))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {}", kind_of(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// -- container impls --------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_array(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = expect_array(v, "2-tuple")?;
        if a.len() != 2 {
            return Err(DeError::new(format!("expected 2 elements, got {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = expect_array(v, "3-tuple")?;
        if a.len() != 3 {
            return Err(DeError::new(format!("expected 3 elements, got {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?, C::from_value(&a[2])?))
    }
}

/// Maps serialise as an array of `[key, value]` pairs so non-string keys
/// (addresses) survive the trip without a string conversion convention.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut out = BTreeMap::new();
        for entry in expect_array(v, "map")? {
            let pair = expect_array(entry, "map entry")?;
            if pair.len() != 2 {
                return Err(DeError::new("map entry must be a [key, value] pair"));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_array(v, "set")?.iter().map(T::from_value).collect()
    }
}
