//! Minimal vendored replacement for `serde_json`: prints and parses the
//! vendored [`serde::Value`] tree as standard JSON.
//!
//! Supports exactly the surface this workspace uses: [`to_string`],
//! [`to_writer`], [`from_str`], [`from_reader`], and an [`Error`] type.
//! Floats are printed with Rust's shortest-roundtrip formatting so `f64`
//! fields survive a round trip bit-for-bit.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Maximum nesting depth the parser accepts (stack-overflow guard).
const MAX_DEPTH: u32 = 512;

/// A serialisation/deserialisation/IO error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::msg(format!("I/O error: {e}"))
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::msg(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-roundtrip and always contains `.` or `e`,
                // so the parser reads it back as a float.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, e);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, e);
            }
            out.push('}');
        }
    }
}

/// Serialises `value` to a JSON string.
///
/// # Errors
///
/// Never fails today; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialises `value` as JSON into `writer`.
///
/// # Errors
///
/// Returns an [`Error`] if the underlying writer fails.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    writer.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { text: s, bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("invalid JSON format at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: u32) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected `null`"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected `true`"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected `false`"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                loop {
                    out.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(out));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    out.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(out));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` is always on a char boundary here.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("integer overflow"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("integer overflow"))
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

/// Deserialises `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on syntax or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error::msg(format!("invalid JSON format: {e}")))
}

/// Deserialises `T` from a JSON reader.
///
/// # Errors
///
/// Returns an [`Error`] on I/O, syntax, or shape mismatches.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader.read_to_string(&mut s)?;
    from_str(&s)
}
