//! Property tests for the static artifact verifier (`fg-verify`) and the
//! VSA-refined O-CFG: every artifact the honest pipeline produces must pass
//! verification, and the refined CFG must stay sound against execution.

use fg_cpu::{Machine, StopReason};
use fg_isa::asm::Asm;
use fg_isa::image::{Image, Linker};
use fg_isa::insn::regs::*;
use fg_isa::insn::Cond;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Same program family as `tests/soundness.rs`: `n` functions, all
/// address-taken through a dispatch table that `main` indexes with each
/// input byte; higher-index direct calls keep the call graph a DAG.
fn random_image(seed: u64, n_funcs: usize) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut lib = Asm::new("libr");
    lib.export("lib_work");
    lib.label("lib_work");
    lib.movi(R4, 2);
    lib.label("lw");
    lib.alui(fg_isa::insn::AluOp::Add, R6, 1);
    lib.addi(R4, -1);
    lib.cmpi(R4, 0);
    lib.jcc(Cond::Gt, "lw");
    lib.ret();

    let mut a = Asm::new("app");
    a.import("lib_work").needs("libr");
    a.export("main");
    a.label("main");
    a.movi(R0, 1);
    a.movi(R1, 0);
    a.movi(R2, 0x6000_0000);
    a.movi(R3, 16);
    a.syscall();
    a.mov(R12, R0);
    a.movi(R13, 0);
    a.label("dispatch_loop");
    a.cmp(R13, R12);
    a.jcc(Cond::Ge, "done");
    a.movi(R8, 0x6000_0000);
    a.add(R8, R13);
    a.ldb(R9, R8, 0);
    a.andi(R9, 31);
    a.cmpi(R9, n_funcs as i32);
    a.jcc(Cond::Lt, "idx_ok");
    a.movi(R9, 0);
    a.label("idx_ok");
    a.shli(R9, 3);
    a.lea(R10, "table");
    a.add(R10, R9);
    a.ld(R11, R10, 0);
    a.calli(R11);
    a.addi(R13, 1);
    a.jmp("dispatch_loop");
    a.label("done");
    a.movi(R0, 0);
    a.movi(R1, 0);
    a.syscall();
    a.halt();

    for f in 0..n_funcs {
        a.label(format!("f{f}"));
        let loops: i32 = rng.gen_range(1..4);
        a.movi(R4, loops);
        a.label(format!("f{f}_l"));
        a.alui(fg_isa::insn::AluOp::Add, R6, f as i32 + 1);
        a.alui(fg_isa::insn::AluOp::And, R6, 0xff);
        a.cmpi(R6, rng.gen_range(0..256));
        a.jcc(Cond::Lt, format!("f{f}_s"));
        a.alui(fg_isa::insn::AluOp::Xor, R6, 0x55);
        a.label(format!("f{f}_s"));
        a.addi(R4, -1);
        a.cmpi(R4, 0);
        a.jcc(Cond::Gt, format!("f{f}_l"));
        if f + 1 < n_funcs && rng.gen_bool(0.6) {
            let callee = rng.gen_range(f + 1..n_funcs);
            a.call(format!("f{callee}"));
        }
        if rng.gen_bool(0.4) {
            a.call("lib_work");
        }
        a.ret();
    }

    let names: Vec<String> = (0..n_funcs).map(|f| format!("f{f}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    a.data_ptrs("table", &refs);
    Linker::new(a.finish().expect("assembles"))
        .library(lib.finish().expect("lib"))
        .link()
        .expect("links")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Every artifact produced by the honest pipeline — assemble, build the
    /// O-CFG/ITC-CFG, train, save — round-trips through the *verifying*
    /// `Deployment::load` and reports zero errors.
    #[test]
    fn honest_pipeline_artifacts_pass_verifier(
        seed in any::<u64>(),
        n_funcs in 2usize..8,
        input in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let image = random_image(seed, n_funcs);
        let mut d = flowguard::Deployment::analyze(&image);
        d.train(&[input]);

        let report = d.verify();
        prop_assert!(
            !report.has_errors(),
            "honest artifact flagged by verifier:\n{report}"
        );

        let path = std::env::temp_dir().join(format!("fg_verifier_pt_{seed}_{n_funcs}.json"));
        d.save(&path).expect("save");
        let reloaded = flowguard::Deployment::load(&path);
        let _ = std::fs::remove_file(&path);
        let reloaded = reloaded.expect("verifying load accepts honest artifact");
        prop_assert_eq!(reloaded.itc.edge_count(), d.itc.edge_count());
    }

    /// The untrained artifact (straight out of `analyze`) is also
    /// structurally valid — the verifier only *warns* about missing credit
    /// labels, it does not error.
    #[test]
    fn untrained_artifacts_verify_with_warnings_only(
        seed in any::<u64>(),
        n_funcs in 2usize..8,
    ) {
        let image = random_image(seed, n_funcs);
        let d = flowguard::Deployment::analyze(&image);
        let report = d.verify();
        prop_assert!(!report.has_errors(), "untrained artifact errored:\n{report}");
        prop_assert!(
            report.contains(fg_verify::Rule::Untrained),
            "expected the FG-N01 untrained warning"
        );
    }

    /// VSA soundness against execution: the *refined* O-CFG admits every
    /// transfer a real run takes, for any program/input the generator
    /// produces. Refinement may only drop targets that can never execute.
    #[test]
    fn refined_ocfg_admits_random_executions(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let image = random_image(seed, n_funcs);
        let refined = fg_cfg::OCfg::build_refined(&image);

        let mut m = Machine::new(&image, 0x4000);
        m.enable_branch_log();
        let mut k = fg_kernel::Kernel::with_input(&input);
        let stop = m.run(&mut k, 5_000_000);
        prop_assert!(matches!(stop, StopReason::Exited(0)), "{stop:?}");

        for b in m.branch_log.as_ref().expect("log") {
            if b.kind == fg_isa::insn::CofiKind::FarTransfer {
                continue;
            }
            let bi = refined.disasm.block_containing(b.from).expect("known block");
            prop_assert!(
                refined.admits(bi, b.to),
                "refined O-CFG must admit {:#x} → {:#x} ({:?})",
                b.from,
                b.to,
                b.kind
            );
        }
    }

    /// Refinement only narrows: the refined CFG's average indirect-target
    /// count never exceeds the conservative build's, and the ITC-CFG built
    /// from the refined O-CFG still passes the verifier.
    #[test]
    fn refined_ocfg_narrows_and_verifies(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
    ) {
        let image = random_image(seed, n_funcs);
        let ocfg = fg_cfg::OCfg::build(&image);
        let refined = fg_cfg::OCfg::build_refined(&image);
        prop_assert!(
            fg_cfg::aia_vsa(&refined) <= fg_cfg::aia_ocfg(&ocfg) + 1e-9,
            "VSA refinement must not widen the AIA"
        );

        let itc = fg_cfg::ItcCfg::build(&refined);
        let report = fg_verify::verify(&image, &refined, &itc);
        prop_assert!(!report.has_errors(), "refined artifact errored:\n{report}");
    }
}
