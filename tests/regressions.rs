//! Cross-crate edge cases: tiny trace buffers, custom endpoints, VDSO
//! routing, parallel decoding under attack, config serialisation.

use fg_cpu::{IptUnit, Machine, StopReason, TraceUnit};
use fg_ipt::topa::Topa;
use fg_kernel::{SensitiveSet, Sysno};
use flowguard::{Deployment, FlowGuardConfig};

/// A wrap-heavy 8 KiB ToPA (two 4 KiB regions) still protects without false
/// positives: seam resynchronisation must hold up under constant wrapping.
#[test]
fn tiny_topa_survives_heavy_wrapping() {
    let w = fg_workloads::openssh();
    let mut d = Deployment::analyze(&w.image);
    d.train(std::slice::from_ref(&w.default_input));
    let cfg = FlowGuardConfig { topa_region_bytes: 4096, ..Default::default() };
    let mut p = d.launch(&w.default_input, cfg);
    let stop = p.run(500_000_000);
    assert_eq!(stop, StopReason::Exited(0));
    assert!(!p.violated());
    assert!(
        p.machine.trace.as_ipt().expect("ipt").topa().has_wrapped(),
        "the test must actually exercise wrapping"
    );
}

/// User-specified endpoints (§7.1.2: "FlowGuard provides an interface for
/// users to specify their own endpoints"): with `read` as the only endpoint,
/// checks trigger at reads and the ROP attack is still caught there.
#[test]
fn custom_endpoint_set() {
    let w = fg_workloads::nginx();
    let mut d = Deployment::analyze(&w.image);
    let mut corpus = vec![w.default_input.clone()];
    for c in 0..8u8 {
        corpus.push(fg_workloads::request(c, b"benign-payload"));
    }
    d.train(&corpus);
    let cfg = FlowGuardConfig {
        endpoints: SensitiveSet::custom(vec![Sysno::Read]),
        ..Default::default()
    };

    // Benign traffic passes with the custom endpoints.
    let mut p = d.launch(&w.default_input, cfg.clone());
    assert_eq!(p.run(500_000_000), StopReason::Exited(0));
    assert!(!p.violated());
    assert!(p.stats.snapshot().checks > 0, "reads must have triggered checks");

    // The ROP chain reads nothing after the hijack, but its *next* request
    // read (from the event loop it never returns to) is unreachable — so
    // detection happens only if a read occurs post-hijack. Verify instead
    // that the write-endpoint default still catches it while the read-only
    // config lets it through: endpoint choice matters.
    let g = fg_attacks::find_gadgets(&w.image);
    let attack = fg_attacks::rop_write(&w.image, &g);
    let read_only = fg_attacks::run_protected(&d, &attack, cfg);
    assert!(
        !read_only.detected,
        "no read endpoint fires after the hijack — endpoint-pruning territory"
    );
    let default = fg_attacks::run_protected(&d, &attack, FlowGuardConfig::default());
    assert!(default.detected, "the default set catches it at write");
}

/// `gettimeofday` resolves to the VDSO (§4.1): the runtime TIP stream for
/// the time handler must include VDSO addresses.
#[test]
fn vdso_calls_appear_in_trace() {
    let w = fg_workloads::vsftpd();
    let vdso = w.image.module_named("vdso").expect("vdso module");
    let mut m = Machine::new(&w.image, 0x4000);
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    // Only "time" requests (cmd 2).
    let mut input = Vec::new();
    for _ in 0..4 {
        input.extend(fg_workloads::request(2, b"now"));
    }
    let mut k = fg_kernel::Kernel::with_input(&input);
    assert_eq!(m.run(&mut k, 100_000_000), StopReason::Exited(0));
    m.trace.as_ipt_mut().expect("ipt").flush();
    let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
    let scan = fg_ipt::fast::scan(&bytes).expect("scan");
    assert!(
        scan.tip_ips().iter().any(|&ip| vdso.contains_code(ip)),
        "the PLT jump for gettimeofday must land in the VDSO"
    );
}

/// Attack detection is unaffected by the parallel-decode configuration.
#[test]
fn parallel_decode_detects_attacks_identically() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let attack = fg_attacks::rop_write(&w.image, &g);
    let cfg = FlowGuardConfig { parallel_decode: true, ..Default::default() };
    let r = fg_attacks::run_protected(&d, &attack, cfg);
    assert!(r.detected);
    assert!(r.endpoints.contains(&"write"));
}

/// `FlowGuardConfig` survives a JSON round trip (deployment configs are
/// shipped alongside artifacts).
#[test]
fn config_json_roundtrip() {
    let cfg = FlowGuardConfig {
        pkt_count: 48,
        cred_ratio: 0.9,
        parallel_decode: true,
        pmi_endpoints: true,
        path_matching: true,
        ..Default::default()
    };
    let json = serde_json::to_string(&cfg).expect("serialise");
    let back: FlowGuardConfig = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.pkt_count, 48);
    assert_eq!(back.cred_ratio, 0.9);
    assert!(back.parallel_decode && back.pmi_endpoints && back.path_matching);
    // The skipped endpoints field falls back to the PathArmor default.
    assert!(back.endpoints.contains(Sysno::Write));
}

/// The fuzz-trained deployment detects the implanted overflow *as a crash*
/// during fuzzing and FlowGuard catches the weaponised version at runtime —
/// the full offline-to-online handoff.
#[test]
fn fuzz_to_detection_handoff() {
    let w = fg_workloads::nginx();
    let mut d = Deployment::analyze(&w.image);
    let seeds = vec![fg_workloads::request(3, &[b'x'; 20])];
    let (stats, _) = d.fuzz_train(seeds, 600, fg_fuzz::FuzzConfig::default());
    assert!(stats.edges_labeled > 0);
    let g = fg_attacks::find_gadgets(&w.image);
    let attack = fg_attacks::rop_write(&w.image, &g);
    let r = fg_attacks::run_protected(&d, &attack, FlowGuardConfig::default());
    assert!(r.detected, "fuzz-trained deployment must still catch the exploit");
}
