//! Streaming-consumption integration tests: the background ToPA drain must
//! not change any detection outcome or benign result, with the pipeline on
//! or off.

use fg_cpu::StopReason;
use flowguard::{Deployment, FlowGuardConfig};

fn attack_payloads(w: &fg_workloads::Workload) -> Vec<(&'static str, Vec<u8>)> {
    let g = fg_attacks::find_gadgets(&w.image);
    vec![
        ("rop", fg_attacks::rop_write(&w.image, &g)),
        ("srop", fg_attacks::srop_execve(&w.image, &g)),
        ("ret2lib", fg_attacks::ret_to_lib(&w.image, &g)),
        ("flush", fg_attacks::history_flush(&w.image, &g, 12)),
    ]
}

/// All four attack routes are detected with the streaming consumer enabled,
/// and equally with it gated off — the drain may only move *when* bytes are
/// scanned, never what the checks conclude.
#[test]
fn attacks_detected_with_and_without_streaming() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    for (name, payload) in attack_payloads(&w) {
        for streaming in [true, false] {
            let cfg = FlowGuardConfig { streaming, ..Default::default() };
            let r = fg_attacks::run_protected(&d, &payload, cfg);
            assert!(r.detected, "{name} must be detected (streaming={streaming})");
            assert_eq!(
                r.stop,
                StopReason::Killed(fg_kernel::SIGKILL),
                "{name} (streaming={streaming})"
            );
        }
    }
}

/// Benign runs stay violation-free under streaming, and the background
/// consumer actually does the draining (the check path sees a mostly-empty
/// buffer).
#[test]
fn benign_runs_clean_with_streaming() {
    for w in [fg_workloads::nginx_patched(), fg_workloads::vsftpd(), fg_workloads::openssh()] {
        let mut d = Deployment::analyze(&w.image);
        d.train(std::slice::from_ref(&w.default_input));
        let cfg = FlowGuardConfig { streaming: true, ..Default::default() };
        let mut p = d.launch(&w.default_input, cfg);
        let stop = p.run(500_000_000);
        assert!(matches!(stop, StopReason::Exited(0)), "{}: {stop:?}", w.name);
        assert!(!p.violated(), "{}: no violations on benign input", w.name);
        let s = p.stats.snapshot();
        assert!(s.stream_drains > 0, "{}: background drains must run", w.name);
        assert!(s.stream_drained_bytes > 0, "{}: drains must consume bytes", w.name);
    }
}

/// Streaming and endpoint-time consumption agree check for check: same
/// verdict counters on the same deployment and input.
#[test]
fn streaming_verdict_parity_on_benign_load() {
    let w = fg_workloads::exim();
    let mut d = Deployment::analyze(&w.image);
    d.train(std::slice::from_ref(&w.default_input));
    let run = |streaming: bool| {
        let cfg = FlowGuardConfig { streaming, ..Default::default() };
        let mut p = d.launch(&w.default_input, cfg);
        let stop = p.run(500_000_000);
        assert!(matches!(stop, StopReason::Exited(0)), "{stop:?}");
        let s = p.stats.snapshot();
        (s.checks, s.fast_clean, s.fast_malicious, s.slow_invocations, s.slow_attacks)
    };
    assert_eq!(run(true), run(false), "streaming must not change verdicts");
}
