//! Fleet-enforcement integration tests: a process supervised inside a wide
//! fleet must behave exactly as it does alone — same verdicts, same
//! violations, bit-identical forensic flight records — and a fleet under
//! concurrent attack must catch every payload.

use fg_cpu::StopReason;
use flowguard::{
    Deployment, EngineTelemetry, FleetConfig, FleetSupervisor, FlightRecord, FlowGuardConfig,
    ViolationSummary,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Width of the equivalence fleet (the ISSUE's bar: solo == 64-wide).
const FLEET_WIDTH: u64 = 64;

fn fleet_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::default();
    // Streaming engines so the deferred-drain scheduler is actually in play.
    cfg.flowguard.streaming = true;
    cfg
}

fn solo_cfg() -> FlowGuardConfig {
    FlowGuardConfig { streaming: true, ..Default::default() }
}

/// The detection-relevant outcome of one protected run: verdict counters,
/// the violation log, and the raw flight records (whose `topa_window`
/// bytes prove the per-process trace itself is bit-identical).
type Fingerprint = (u64, u64, u64, u64, u64, u64, u64, Vec<ViolationSummary>, Vec<FlightRecord>);

fn fingerprint(stats: &EngineTelemetry) -> Fingerprint {
    let s = stats.telemetry_snapshot();
    (
        s.checks,
        s.fast_clean,
        s.fast_malicious,
        s.slow_invocations,
        s.slow_attacks,
        s.insufficient,
        s.violations_total,
        s.violations,
        s.flight_records,
    )
}

/// One trained deployment of the patched (benign) nginx, shared across
/// proptest cases.
fn patched_nginx() -> &'static Deployment {
    static D: OnceLock<Deployment> = OnceLock::new();
    D.get_or_init(|| {
        let w = fg_workloads::nginx_patched();
        let mut d = Deployment::analyze(&w.image);
        d.train(std::slice::from_ref(&w.default_input));
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    /// A process checked inside a 64-wide fleet produces bit-identical
    /// verdicts, violations, and flight records to the same deployment and
    /// input run solo. Member 0 sits at the default CR3 (the one a solo
    /// launch uses), so even the CR3s embedded in PIP packets line up.
    #[test]
    fn fleet_member_matches_solo(
        seed in any::<u64>(),
        requests in 1usize..4,
    ) {
        let d = patched_nginx();
        let input = fg_workloads::load_input(requests, seed);

        let mut p = d.launch(&input, solo_cfg());
        let stop = p.run(500_000_000);
        prop_assert!(matches!(stop, StopReason::Exited(0)), "solo: {stop:?}");
        let solo = fingerprint(&p.stats);

        let mut fleet = FleetSupervisor::new(fleet_cfg());
        fleet.spawn_deployment("nginx", d.clone(), &input).expect("benign artifact admitted");
        for pid in 1..FLEET_WIDTH {
            fleet
                .spawn_deployment("nginx", d.clone(), &fg_workloads::load_input(1, pid))
                .expect("benign artifact admitted");
        }
        fleet.run();

        let m = &fleet.members()[0];
        prop_assert!(
            matches!(m.stop, Some(StopReason::Exited(0))),
            "member 0: {:?}",
            m.stop
        );
        prop_assert_eq!(solo, fingerprint(&m.stats), "fleet membership must not change outcomes");

        // The crowd itself stays clean, and the shared artifact cache
        // served every sibling spawn.
        prop_assert!(fleet.members().iter().all(|m| !m.violated()));
        let snap = fleet.snapshot();
        prop_assert_eq!(snap.cache.hits, FLEET_WIDTH - 1);
        prop_assert_eq!(snap.scheduler.dropped, 0);
    }
}

/// An attacked member's forensic flight records — including the captured
/// ToPA window bytes — are bit-identical in a fleet and solo: per-CR3
/// sub-buffers mean neighbours never flush or overwrite a member's trace.
#[test]
fn attacked_member_flight_records_match_solo() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let payload = fg_attacks::rop_write(&w.image, &g);

    let mut p = d.launch(&payload, solo_cfg());
    let _ = p.run(500_000_000);
    assert!(p.violated(), "solo run must detect the ROP chain");
    let solo = fingerprint(&p.stats);
    assert!(!solo.8.is_empty(), "violation must capture a flight record");

    let mut fleet = FleetSupervisor::new(fleet_cfg());
    fleet.spawn_deployment("nginx-vuln", d.clone(), &payload).expect("artifact admitted");
    let benign = fg_workloads::nginx_patched();
    for pid in 1..8u64 {
        fleet
            .spawn(
                &benign.name,
                &benign.image,
                std::slice::from_ref(&benign.default_input),
                &fg_workloads::load_input(2, pid),
            )
            .expect("benign artifact admitted");
    }
    fleet.run();

    let m = &fleet.members()[0];
    assert!(m.violated(), "fleet run must detect the ROP chain");
    assert_eq!(solo, fingerprint(&m.stats), "flight records must be bit-identical");
}

/// Five fleet members each run a distinct attack payload against the same
/// shared vulnerable deployment, concurrently. Every one is detected and
/// killed; the artifact cache serves all but the first spawn.
#[test]
fn concurrent_attack_fleet_all_detected() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let payloads: Vec<(&str, Vec<u8>)> = vec![
        ("rop", fg_attacks::rop_write(&w.image, &g)),
        ("srop", fg_attacks::srop_execve(&w.image, &g)),
        ("ret2lib", fg_attacks::ret_to_lib(&w.image, &g)),
        ("flush", fg_attacks::history_flush(&w.image, &g, 12)),
        ("kbouncer", fg_attacks::kbouncer_evasion(&w.image, 12)),
    ];
    let total = payloads.len();

    let mut fleet = FleetSupervisor::new(fleet_cfg());
    for (name, payload) in &payloads {
        fleet.spawn_deployment(name, d.clone(), payload).expect("artifact admitted");
    }
    fleet.run();

    for m in fleet.members() {
        assert!(m.violated(), "attack `{}` must be detected inside the fleet", m.name);
        assert!(
            matches!(m.stop, Some(StopReason::Killed(_))),
            "attack `{}` must be killed: {:?}",
            m.name,
            m.stop
        );
    }

    let snap = fleet.snapshot();
    assert!(snap.violations_total as usize >= total, "one violation per member minimum");
    assert_eq!(snap.cache.hits as usize, total - 1, "shared artifact: one miss, rest hits");
    assert_eq!(snap.scheduler.dropped, 0, "checks are never dropped");
}
