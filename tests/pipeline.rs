//! Cross-crate integration tests: the complete FlowGuard pipeline over the
//! whole evaluation population.

use fg_cpu::{IptUnit, Machine, StopReason, TraceUnit};
use fg_ipt::topa::Topa;
use fg_kernel::Kernel;
use flowguard::{Deployment, FlowGuardConfig};

fn all_benign_workloads() -> Vec<fg_workloads::Workload> {
    let mut ws = vec![fg_workloads::nginx_patched()];
    ws.extend([fg_workloads::vsftpd(), fg_workloads::openssh(), fg_workloads::exim()]);
    ws.extend(fg_workloads::utilities());
    ws.extend(fg_workloads::spec_suite());
    ws
}

/// Every workload, protected and trained, runs its benign input with zero
/// violations — the paper's no-false-positives property (§7.1.2) across the
/// entire population.
#[test]
fn no_false_positives_across_population() {
    for w in all_benign_workloads() {
        let mut d = Deployment::analyze(&w.image);
        d.train(std::slice::from_ref(&w.default_input));
        let mut p = d.launch(&w.default_input, FlowGuardConfig::default());
        let stop = p.run(500_000_000);
        assert!(
            matches!(stop, StopReason::Exited(0)),
            "{}: benign protected run must exit cleanly, got {stop:?}",
            w.name
        );
        assert!(!p.violated(), "{}: no violations on benign input", w.name);
    }
}

/// The §4.2 soundness theorem, on real workloads: every pair of consecutive
/// TIP packets in a benign trace is an ITC-CFG edge.
#[test]
fn itc_soundness_on_real_workloads() {
    for w in all_benign_workloads() {
        let ocfg = fg_cfg::OCfg::build(&w.image);
        let itc = fg_cfg::ItcCfg::build(&ocfg);
        let mut m = Machine::new(&w.image, 0x4000);
        let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 23).expect("topa"));
        unit.start(w.image.entry(), 0x4000);
        m.trace = TraceUnit::Ipt(unit);
        let mut k = Kernel::with_input(&w.default_input);
        m.run(&mut k, 500_000_000);
        m.trace.as_ipt_mut().expect("ipt").flush();
        let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
        let scan = fg_ipt::fast::scan(&bytes).expect("scan");
        for pair in scan.tip_ips().windows(2) {
            assert!(
                itc.edge(pair[0], pair[1]).is_some(),
                "{}: TIP pair {:#x} → {:#x} must be an ITC edge",
                w.name,
                pair[0],
                pair[1]
            );
        }
    }
}

/// Full-decoder fidelity across the population: the instruction-flow
/// reconstruction reproduces the interpreter's branch log exactly.
#[test]
fn decoder_fidelity_on_real_workloads() {
    for w in all_benign_workloads().into_iter().take(8) {
        let mut m = Machine::new(&w.image, 0x4000);
        m.enable_branch_log();
        let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 23).expect("topa"));
        unit.start(w.image.entry(), 0x4000);
        m.trace = TraceUnit::Ipt(unit);
        let mut k = Kernel::with_input(&w.default_input);
        m.run(&mut k, 500_000_000);
        m.trace.as_ipt_mut().expect("ipt").flush();
        let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
        let flow = fg_ipt::flow::FlowDecoder::new(&w.image).decode(&bytes).expect("decodes");
        let log = m.branch_log.as_ref().expect("log");
        assert_eq!(flow.branches.len(), log.len(), "{}: branch counts", w.name);
        for (got, want) in flow.branches.iter().zip(log.iter()) {
            assert_eq!((got.from, got.to, got.kind), (want.from, want.to, want.kind), "{}", w.name);
        }
    }
}

/// All four attack routes of the evaluation are detected end to end, while
/// the same deployment keeps serving benign traffic.
#[test]
fn attack_detection_end_to_end() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let attacks: Vec<(&str, Vec<u8>)> = vec![
        ("rop", fg_attacks::rop_write(&w.image, &g)),
        ("srop", fg_attacks::srop_execve(&w.image, &g)),
        ("ret2lib", fg_attacks::ret_to_lib(&w.image, &g)),
        ("flush", fg_attacks::history_flush(&w.image, &g, 12)),
    ];
    for (name, payload) in attacks {
        let r = fg_attacks::run_protected(&d, &payload, FlowGuardConfig::default());
        assert!(r.detected, "{name} must be detected");
        assert_eq!(r.stop, StopReason::Killed(fg_kernel::SIGKILL), "{name}");
    }
    let benign = fg_attacks::run_protected(&d, &w.default_input, FlowGuardConfig::default());
    assert!(!benign.detected);
}

/// The slow-path cache makes a repeated untrained run cheaper: second
/// serving of the same load does fewer slow-path upcalls than the first.
#[test]
fn slow_path_cache_warms_within_a_run() {
    let w = fg_workloads::nginx_patched();
    let d = Deployment::analyze(&w.image); // completely untrained
    let mut doubled = w.default_input.clone();
    doubled.extend_from_slice(&w.default_input);
    let mut p = d.launch(&doubled, FlowGuardConfig::default());
    let stop = p.run(500_000_000);
    assert!(matches!(stop, StopReason::Exited(0)), "{stop:?}");
    let s = p.stats.snapshot();
    assert!(s.slow_invocations > 0, "untrained run must escalate at least once");
    assert!(
        s.fast_clean > s.slow_invocations,
        "cache should let most checks pass fast ({} clean vs {} slow)",
        s.fast_clean,
        s.slow_invocations
    );
}

/// Parallel PSB-segment scanning is exactly equivalent to serial scanning
/// when enabled on the engine path.
#[test]
fn parallel_decode_config_is_equivalent() {
    let w = fg_workloads::vsftpd();
    let mut d = Deployment::analyze(&w.image);
    d.train(std::slice::from_ref(&w.default_input));
    let serial = {
        let mut p = d.launch(&w.default_input, FlowGuardConfig::default());
        p.run(500_000_000);
        let s = p.stats.snapshot();
        (s.checks, s.fast_clean, s.pairs_checked)
    };
    let parallel = {
        let cfg = FlowGuardConfig { parallel_decode: true, ..Default::default() };
        let mut p = d.launch(&w.default_input, cfg);
        p.run(500_000_000);
        let s = p.stats.snapshot();
        (s.checks, s.fast_clean, s.pairs_checked)
    };
    assert_eq!(serial, parallel);
}
