//! Property-based soundness tests over *randomly generated programs*: the
//! §4.2 theorem (every consecutive TIP pair is an ITC-CFG edge), O-CFG
//! conservatism, and decoder fidelity must hold for any program the
//! generator can produce and any input.

use fg_cpu::{IptUnit, Machine, StopReason, TraceUnit};
use fg_ipt::topa::Topa;
use fg_isa::asm::Asm;
use fg_isa::image::{Image, Linker};
use fg_isa::insn::regs::*;
use fg_isa::insn::Cond;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random-but-terminating program:
///
/// * `n` functions; function `i` may (randomly) direct-call higher-index
///   functions and indirect-call through a table of the last few "leaf"
///   functions (address-taken);
/// * `main` reads input bytes and dispatches `table[byte % n]` per byte;
/// * every loop is counter-bounded.
fn random_image(seed: u64, n_funcs: usize) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_leaves = (n_funcs / 3).max(1);

    let mut lib = Asm::new("libr");
    lib.export("lib_work");
    lib.label("lib_work");
    lib.movi(R4, 3);
    lib.label("lw");
    lib.alui(fg_isa::insn::AluOp::Add, R6, 1);
    lib.addi(R4, -1);
    lib.cmpi(R4, 0);
    lib.jcc(Cond::Gt, "lw");
    lib.ret();

    let mut a = Asm::new("app");
    a.import("lib_work").needs("libr");
    a.export("main");
    a.label("main");
    // read(0, heap, 16)
    a.movi(R0, 1);
    a.movi(R1, 0);
    a.movi(R2, 0x6000_0000);
    a.movi(R3, 16);
    a.syscall();
    a.mov(R12, R0); // bytes read
    a.movi(R13, 0); // index
    a.label("dispatch_loop");
    a.cmp(R13, R12);
    a.jcc(Cond::Ge, "done");
    a.movi(R8, 0x6000_0000);
    a.add(R8, R13);
    a.ldb(R9, R8, 0);
    // table[byte % n] via mask-and-clamp
    a.andi(R9, 31);
    a.cmpi(R9, n_funcs as i32);
    a.jcc(Cond::Lt, "idx_ok");
    a.movi(R9, 0);
    a.label("idx_ok");
    a.shli(R9, 3);
    a.lea(R10, "table");
    a.add(R10, R9);
    a.ld(R11, R10, 0);
    a.calli(R11);
    a.addi(R13, 1);
    a.jmp("dispatch_loop");
    a.label("done");
    a.movi(R0, 0);
    a.movi(R1, 0);
    a.syscall();
    a.halt();

    for f in 0..n_funcs {
        a.label(format!("f{f}"));
        // A bounded inner loop with a data-dependent conditional.
        let loops: i32 = rng.gen_range(1..5);
        a.movi(R4, loops);
        a.label(format!("f{f}_l"));
        a.alui(fg_isa::insn::AluOp::Add, R6, f as i32 + 1);
        a.alui(fg_isa::insn::AluOp::And, R6, 0xff);
        a.cmpi(R6, rng.gen_range(0..256));
        a.jcc(Cond::Lt, format!("f{f}_s"));
        a.alui(fg_isa::insn::AluOp::Xor, R6, 0x55);
        a.label(format!("f{f}_s"));
        a.addi(R4, -1);
        a.cmpi(R4, 0);
        a.jcc(Cond::Gt, format!("f{f}_l"));
        // Maybe call a strictly higher-index function (terminating DAG).
        if f + 1 < n_funcs && rng.gen_bool(0.6) {
            let callee = rng.gen_range(f + 1..n_funcs);
            a.call(format!("f{callee}"));
        }
        // Maybe call the library.
        if rng.gen_bool(0.4) {
            a.call("lib_work");
        }
        a.ret();
    }

    // Dispatch table: all functions are address-taken.
    let names: Vec<String> = (0..n_funcs).map(|f| format!("f{f}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    a.data_ptrs("table", &refs);
    let _ = n_leaves;
    Linker::new(a.finish().expect("assembles"))
        .library(lib.finish().expect("lib"))
        .link()
        .expect("links")
}

fn traced_run(image: &Image, input: &[u8]) -> (Machine, Vec<u8>) {
    let mut m = Machine::new(image, 0x4000);
    m.enable_branch_log();
    let mut unit = IptUnit::flowguard(0x4000, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(image.entry(), 0x4000);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(input);
    let stop = m.run(&mut k, 5_000_000);
    assert!(matches!(stop, StopReason::Exited(0)), "generated programs terminate: {stop:?}");
    m.trace.as_ipt_mut().expect("ipt").flush();
    let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();
    (m, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// §4.2 soundness on random programs and random inputs.
    #[test]
    fn itc_soundness_random_programs(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let image = random_image(seed, n_funcs);
        let ocfg = fg_cfg::OCfg::build(&image);
        let itc = fg_cfg::ItcCfg::build(&ocfg);
        let (_, bytes) = traced_run(&image, &input);
        let scan = fg_ipt::fast::scan(&bytes).expect("scan");
        for pair in scan.tip_ips().windows(2) {
            prop_assert!(
                itc.edge(pair[0], pair[1]).is_some(),
                "TIP pair {:#x} → {:#x} off the ITC-CFG",
                pair[0],
                pair[1]
            );
        }
    }

    /// O-CFG conservatism: every executed transfer is admitted.
    #[test]
    fn ocfg_admits_random_executions(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let image = random_image(seed, n_funcs);
        let ocfg = fg_cfg::OCfg::build(&image);
        let (m, _) = traced_run(&image, &input);
        for b in m.branch_log.as_ref().expect("log") {
            if b.kind == fg_isa::insn::CofiKind::FarTransfer {
                continue;
            }
            let bi = ocfg.disasm.block_containing(b.from).expect("known block");
            prop_assert!(
                ocfg.admits(bi, b.to),
                "O-CFG must admit {:#x} → {:#x} ({:?})",
                b.from,
                b.to,
                b.kind
            );
        }
    }

    /// Decoder fidelity: reconstruction equals ground truth.
    #[test]
    fn decoder_fidelity_random_programs(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let image = random_image(seed, n_funcs);
        let (m, bytes) = traced_run(&image, &input);
        let flow = fg_ipt::flow::FlowDecoder::new(&image).decode(&bytes).expect("decodes");
        let log = m.branch_log.as_ref().expect("log");
        prop_assert_eq!(flow.branches.len(), log.len());
        for (got, want) in flow.branches.iter().zip(log.iter()) {
            prop_assert_eq!((got.from, got.to, got.kind), (want.from, want.to, want.kind));
        }
    }

    /// Slow-path equivalence: the PSB-sharded pool decode and the serial
    /// decode return identical verdicts, identical cumulative walk counts,
    /// and identical validated TIP pairs — on clean traces and on traces
    /// with a random byte of packet damage (both sides must resynchronise
    /// at the same PSB).
    #[test]
    fn slowpath_sharded_equals_serial(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
        damage in (any::<bool>(), any::<usize>(), 1u8..=255),
    ) {
        let image = random_image(seed, n_funcs);
        let ocfg = fg_cfg::OCfg::build(&image);
        let (_, mut bytes) = traced_run(&image, &input);
        let (do_damage, at, xor) = damage;
        if do_damage {
            let psbs = fg_ipt::PacketParser::psb_offsets(&bytes);
            // Damage strictly inside the synced region so both decoders
            // face it (bytes before the first PSB are seek-only).
            if psbs.len() >= 2 && bytes.len() > psbs[0] + 1 {
                let off = psbs[0] + 1 + at % (bytes.len() - psbs[0] - 1);
                bytes[off] ^= xor;
            }
        }
        let cost = fg_cpu::CostModel::calibrated();
        let serial = flowguard::slowpath::check(&image, &ocfg, &bytes, &cost);
        let mut scratch = flowguard::slowpath::SlowScratch::new();
        let sharded = flowguard::slowpath::check_incremental(
            &image, &ocfg, &bytes, 0, &cost, Some(flowguard::WorkerPool::global()), &mut scratch,
        );
        prop_assert_eq!(&serial.verdict, &sharded.verdict);
        prop_assert_eq!(serial.insns_walked, sharded.insns_walked);
    }

    /// A retargeted TIP (control-flow hijack as the trace records it) is
    /// detected, and the serial and sharded checkers agree on the verdict.
    /// XOR-ing bit 0 of the payload misaligns the target (`INSN_SIZE` = 8),
    /// so the reconstruction walk cannot silently absorb it.
    #[test]
    fn slowpath_detects_retargeted_tip_identically(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
        which in any::<usize>(),
    ) {
        let image = random_image(seed, n_funcs);
        let ocfg = fg_cfg::OCfg::build(&image);
        let (_, mut bytes) = traced_run(&image, &input);
        let psbs = fg_ipt::PacketParser::psb_offsets(&bytes);
        if psbs.is_empty() {
            return Ok(());
        }
        let tips: Vec<usize> = fg_ipt::PacketParser::new(&bytes)
            .filter_map(std::result::Result::ok)
            .filter(|p| {
                p.offset >= psbs[0] && p.len >= 2 && matches!(p.packet, fg_ipt::Packet::Tip { .. })
            })
            .map(|p| p.offset)
            .collect();
        if tips.is_empty() {
            return Ok(());
        }
        bytes[tips[which % tips.len()] + 1] ^= 0x01;
        let cost = fg_cpu::CostModel::calibrated();
        let serial = flowguard::slowpath::check(&image, &ocfg, &bytes, &cost);
        prop_assert!(
            matches!(serial.verdict, flowguard::slowpath::SlowVerdict::Attack(_)),
            "retargeted TIP must be detected: {:?}", serial.verdict
        );
        let mut scratch = flowguard::slowpath::SlowScratch::new();
        let sharded = flowguard::slowpath::check_incremental(
            &image, &ocfg, &bytes, 0, &cost, Some(flowguard::WorkerPool::global()), &mut scratch,
        );
        prop_assert_eq!(&serial.verdict, &sharded.verdict);
        prop_assert_eq!(serial.insns_walked, sharded.insns_walked);
    }

    /// Checkpointed re-checking over growing windows returns exactly what a
    /// cold check of each window returns, while decoding strictly fewer
    /// instructions in total (the warm scratch only walks appended bytes).
    #[test]
    fn slowpath_checkpoint_equals_cold(
        seed in any::<u64>(),
        n_funcs in 2usize..10,
        input in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let image = random_image(seed, n_funcs);
        let ocfg = fg_cfg::OCfg::build(&image);
        let (_, bytes) = traced_run(&image, &input);
        let cost = fg_cpu::CostModel::calibrated();
        // Windows cut at PSB boundaries (packet-aligned), growing by append.
        let mut cuts: Vec<usize> = fg_ipt::PacketParser::psb_offsets(&bytes)
            .into_iter()
            .skip(1)
            .take(3)
            .collect();
        if cuts.last() != Some(&bytes.len()) {
            cuts.push(bytes.len());
        }
        let mut warm = flowguard::slowpath::SlowScratch::new();
        let (mut warm_total, mut cold_total) = (0u64, 0u64);
        for &cut in &cuts {
            let mut cold = flowguard::slowpath::SlowScratch::new();
            let w = flowguard::slowpath::check_incremental(
                &image, &ocfg, &bytes[..cut], 0, &cost, None, &mut warm,
            );
            let c = flowguard::slowpath::check_incremental(
                &image, &ocfg, &bytes[..cut], 0, &cost, None, &mut cold,
            );
            prop_assert_eq!(&w.verdict, &c.verdict);
            prop_assert_eq!(w.insns_walked, c.insns_walked);
            warm_total += w.insns_decoded;
            cold_total += c.insns_decoded;
        }
        if cuts.len() > 1 {
            prop_assert!(
                warm_total < cold_total,
                "warm lineage must decode strictly less: {} vs {}",
                warm_total,
                cold_total
            );
            prop_assert!(warm.checkpoint_hits >= 1);
        }
    }

    /// Trained-on-same-input fast path returns Clean for that input.
    #[test]
    fn trained_fast_path_is_clean(
        seed in any::<u64>(),
        n_funcs in 2usize..8,
        input in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let image = random_image(seed, n_funcs);
        let mut d = flowguard::Deployment::analyze(&image);
        d.train(std::slice::from_ref(&input));
        let mut p = d.launch(&input, flowguard::FlowGuardConfig::default());
        let stop = p.run(5_000_000);
        prop_assert!(matches!(stop, StopReason::Exited(0)), "{:?}", stop);
        prop_assert!(!p.violated());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Packet codec round-trip for arbitrary event sequences.
    #[test]
    fn packet_codec_roundtrip(ops in proptest::collection::vec(
        (0u8..5, any::<u32>(), any::<bool>()), 1..120))
    {
        use fg_ipt::{Packet, PacketEncoder, PacketParser};
        let mut enc = PacketEncoder::new(Vec::new());
        let mut expected: Vec<Packet> = Vec::new();
        let mut pending: Vec<bool> = Vec::new();
        let flush = |pending: &mut Vec<bool>, expected: &mut Vec<Packet>| {
            for chunk in pending.chunks(6) {
                expected.push(Packet::Tnt(fg_ipt::TntSeq::from_slice(chunk)));
            }
            pending.clear();
        };
        for (op, val, flag) in ops {
            let ip = (val as u64) & 0x7fff_ffff;
            match op {
                0 => {
                    pending.push(flag);
                    if pending.len() == 6 {
                        flush(&mut pending, &mut expected);
                    }
                    enc.tnt_bit(flag);
                }
                1 => {
                    flush(&mut pending, &mut expected);
                    expected.push(Packet::Tip { ip });
                    enc.tip(ip);
                }
                2 => {
                    flush(&mut pending, &mut expected);
                    expected.push(Packet::Fup { ip });
                    enc.fup(ip);
                }
                3 => {
                    flush(&mut pending, &mut expected);
                    expected.push(Packet::TipPge { ip });
                    enc.tip_pge(ip);
                }
                _ => {
                    flush(&mut pending, &mut expected);
                    expected.push(Packet::TipPgd { ip: flag.then_some(ip) });
                    enc.tip_pgd(flag.then_some(ip));
                }
            }
        }
        flush(&mut pending, &mut expected);
        let bytes = enc.into_sink();
        let got: Vec<Packet> =
            PacketParser::new(&bytes).map(|p| p.expect("valid").packet).collect();
        prop_assert_eq!(got, expected);
    }
}
