//! Integration tests for the tier-0 entry-point bitset: the audit-extracted
//! dense policy probed on the fast path before any edge lookup.
//!
//! Two properties the audit pass promises (ISSUE 6 acceptance):
//!
//! 1. An attack whose hijacked target is not an ITC-CFG node is caught by
//!    the one-bit probe itself — `tier0_misses` counts the detection.
//! 2. A benign trained run never escalates through the probe: every TIP
//!    pair passes (`tier0_hits` grows), `tier0_misses` stays zero.

use fg_cpu::StopReason;
use flowguard::{Deployment, FlowGuardConfig};

/// A ROP payload pivots control into a mid-function gadget. That address is
/// no indirect-transfer target, so it is absent from the entry bitset and
/// the tier-0 probe alone must flag the window — before the node binary
/// search or edge resolution ever run.
#[test]
fn tier0_probe_detects_rop_attack() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let payload = fg_attacks::rop_write(&w.image, &g);

    let mut p = d.launch(&payload, FlowGuardConfig::default());
    let stop = p.run(50_000_000);
    assert_eq!(stop, StopReason::Killed(fg_kernel::SIGKILL), "attack must be killed");
    assert!(p.violated(), "ROP payload must be detected");

    let ts = p.stats.telemetry_snapshot();
    assert!(
        ts.tier0_misses >= 1,
        "the hijacked target must miss the entry bitset (got {} misses)",
        ts.tier0_misses
    );
}

/// With the probe gated off, detection still happens (the edge check is the
/// backstop), but no tier-0 counters move — the bitset is a pure
/// acceleration layer, not a correctness dependency.
#[test]
fn attack_detected_even_with_tier0_disabled() {
    let (w, d) = fg_attacks::trained_vulnerable_nginx();
    let g = fg_attacks::find_gadgets(&w.image);
    let payload = fg_attacks::rop_write(&w.image, &g);

    let cfg = FlowGuardConfig { tier0_bitset: false, ..FlowGuardConfig::default() };
    let mut p = d.launch(&payload, cfg);
    p.run(50_000_000);
    assert!(p.violated(), "detection must not depend on the bitset");

    let ts = p.stats.telemetry_snapshot();
    assert_eq!(ts.tier0_hits, 0, "no probes while the bitset is gated off");
    assert_eq!(ts.tier0_misses, 0, "no probes while the bitset is gated off");
}

/// A trained benign run exercises the probe on every checked TIP pair and
/// never escalates through it: zero false positives from tier 0.
#[test]
fn tier0_probe_has_zero_false_escalations_on_benign_run() {
    let w = fg_workloads::nginx_patched();
    let mut d = Deployment::analyze(&w.image);
    d.train(std::slice::from_ref(&w.default_input));

    let mut p = d.launch(&w.default_input, FlowGuardConfig::default());
    let stop = p.run(500_000_000);
    assert!(matches!(stop, StopReason::Exited(0)), "benign run exits cleanly, got {stop:?}");
    assert!(!p.violated(), "no violations on benign input");

    let ts = p.stats.telemetry_snapshot();
    assert!(ts.tier0_hits > 0, "the probe must actually run on checked pairs");
    assert_eq!(ts.tier0_misses, 0, "zero false escalations through tier 0");
    assert_eq!(ts.pairs_checked, ts.tier0_hits, "every checked pair is probed first");
}
