//! Full deployment pipeline on the nginx-alike web server: fuzz-driven
//! training (Figure 1's steps ① and ②) followed by protected serving of an
//! ab-style benign load (steps ③–⑤), with engine statistics.
//!
//! Run with: `cargo run --release --example protect_server`

use fg_fuzz::FuzzConfig;
use flowguard::{Deployment, FlowGuardConfig};

fn main() {
    let app = fg_workloads::nginx_patched();
    println!(
        "target: {} ({} modules, {} instructions)",
        app.name,
        app.image.modules().len(),
        app.image.total_insns()
    );

    // ① static analysis
    let mut deployment = Deployment::analyze(&app.image);
    println!(
        "ITC-CFG reconstructed: |V| = {}, |E| = {}, {:.1} KiB resident",
        deployment.itc.node_count(),
        deployment.itc.edge_count(),
        deployment.itc.memory_bytes() as f64 / 1024.0
    );

    // ② coverage-oriented fuzzing → credit labeling
    let seeds = vec![fg_workloads::request(0, b"GET /index"), fg_workloads::request(1, b"42")];
    let (stats, history) = deployment.fuzz_train(seeds, 600, FuzzConfig::default());
    println!(
        "fuzz training: {} corpus inputs, {} TIP pairs replayed, {} edges high-credit ({:.1}% of ITC)",
        stats.inputs,
        stats.pairs,
        stats.edges_labeled,
        stats.cred_fraction * 100.0
    );
    if let Some(last) = history.last() {
        println!(
            "fuzzer: {} executions, {} paths, {} crashes",
            last.execs, last.paths, last.crashes
        );
    }

    // ③–⑤ protected serving
    let load = fg_workloads::benign_input(48);
    let mut process = deployment.launch(&load, FlowGuardConfig::default());
    let stop = process.run(500_000_000);
    let s = process.stats.snapshot();
    println!("\nserved the benign load: {stop:?}");
    println!("  endpoint checks:     {}", s.checks);
    println!("  fast-path clean:     {}", s.fast_clean);
    println!(
        "  slow-path upcalls:   {} ({:.2}% of checks)",
        s.slow_invocations,
        s.slow_fraction() * 100.0
    );
    println!("  runtime cred-ratio:  {:.1}%", s.credited_fraction() * 100.0);
    println!("  violations:          {}", s.violations.len());
    assert!(s.violations.is_empty(), "no false positives on benign traffic");
    let exec = process.machine.account.exec;
    println!(
        "  overhead: trace {:.2}%  decode {:.2}%  check {:.2}%  (total {:.2}%)",
        process.machine.account.trace / exec * 100.0,
        process.machine.account.decode / exec * 100.0,
        process.machine.account.check / exec * 100.0,
        process.machine.account.overhead() * 100.0
    );
}
