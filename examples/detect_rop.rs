//! The paper's §7.1.2 headline demonstration: a real ROP exploit against
//! the vulnerable nginx-alike works unprotected and is killed by FlowGuard
//! at the `write` endpoint; the SROP variant is killed at `sigreturn`.
//!
//! Run with: `cargo run --release --example detect_rop`

use fg_attacks::{
    find_gadgets, rop_write, run_protected, run_unprotected, srop_execve, trained_vulnerable_nginx,
};
use flowguard::FlowGuardConfig;

fn main() {
    println!("building the vulnerable server and training FlowGuard on benign traffic...");
    let (workload, deployment) = trained_vulnerable_nginx();
    let gadgets = find_gadgets(&workload.image);
    println!(
        "gadget scan: {} pop-gadgets, {} bare rets, syscall trampoline at {:#x}",
        gadgets.pop.len(),
        gadgets.rets.len(),
        gadgets.syscall()
    );

    // --- traditional ROP -----------------------------------------------
    let rop = rop_write(&workload.image, &gadgets);
    let free = run_unprotected(&workload.image, &rop);
    println!("\nROP without protection: {:?}", free.stop);
    println!("  attacker output: {:?}", String::from_utf8_lossy(&free.output));
    assert!(free.attack_succeeded(b"HACKED!"), "the exploit genuinely works");

    let guarded = run_protected(&deployment, &rop, FlowGuardConfig::default());
    println!("ROP under FlowGuard: {:?}", guarded.stop);
    println!("  detected = {}, endpoint = {:?}", guarded.detected, guarded.endpoints);
    assert!(guarded.detected && guarded.endpoints.contains(&"write"));

    // --- SROP ------------------------------------------------------------
    let srop = srop_execve(&workload.image, &gadgets);
    let free = run_unprotected(&workload.image, &srop);
    println!("\nSROP without protection: {:?}; execve log = {:?}", free.stop, free.execve);
    assert!(free.execve.iter().any(|p| p == "/bin/sh"), "the forged frame reaches execve");

    let guarded = run_protected(&deployment, &srop, FlowGuardConfig::default());
    println!("SROP under FlowGuard: {:?}", guarded.stop);
    println!("  detected = {}, endpoint = {:?}", guarded.detected, guarded.endpoints);
    assert!(guarded.detected && guarded.endpoints.contains(&"sigreturn"));

    println!("\nboth attacks prevented, exactly as in the paper (§7.1.2).");
}
