//! Quickstart: protect a tiny program end to end.
//!
//! Builds a two-module program with the assembler DSL, runs the full
//! FlowGuard pipeline (static analysis → training → protected execution),
//! and shows that benign execution passes.
//!
//! Run with: `cargo run --example quickstart`

use fg_isa::asm::Asm;
use fg_isa::image::Linker;
use fg_isa::insn::regs::*;
use flowguard::{Deployment, FlowGuardConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a program: main reads a byte, dispatches through a function
    //    pointer table, writes a response.
    let mut libc = Asm::new("libc");
    libc.export("write_out");
    libc.label("write_out");
    libc.mov(R3, R2);
    libc.mov(R2, R1);
    libc.movi(R1, 1);
    libc.movi(R0, 2); // write
    libc.syscall();
    libc.ret();

    let mut app = Asm::new("app");
    app.import("write_out").needs("libc");
    app.export("main");
    app.label("main");
    // read(fd=0, buf=heap, len=1)
    app.movi(R0, 1);
    app.movi(R1, 0);
    app.movi(R2, 0x6000_0000);
    app.movi(R3, 1);
    app.syscall();
    // dispatch handlers[byte & 1]
    app.movi(R8, 0x6000_0000);
    app.ldb(R9, R8, 0);
    app.andi(R9, 1);
    app.shli(R9, 3);
    app.lea(R10, "handlers");
    app.add(R10, R9);
    app.ld(R11, R10, 0);
    app.calli(R11);
    // exit(0)
    app.movi(R0, 0);
    app.movi(R1, 0);
    app.syscall();
    app.halt();
    app.label("ping");
    app.lea(R1, "pong");
    app.movi(R2, 5);
    app.call("write_out");
    app.ret();
    app.label("boom");
    app.lea(R1, "bang");
    app.movi(R2, 5);
    app.call("write_out");
    app.ret();
    app.data_bytes("pong", b"pong\n");
    app.data_bytes("bang", b"bang\n");
    app.data_ptrs("handlers", &["ping", "boom"]);

    let image = Linker::new(app.finish()?).library(libc.finish()?).link()?;
    println!("linked: {} modules, {} instructions", image.modules().len(), image.total_insns());

    // 2. Static analysis: O-CFG → ITC-CFG.
    let mut deployment = Deployment::analyze(&image);
    println!(
        "ITC-CFG: {} nodes, {} edges",
        deployment.itc.node_count(),
        deployment.itc.edge_count()
    );

    // 3. Train on both handler paths.
    let stats = deployment.train(&[b"a".to_vec(), b"b".to_vec()]);
    println!(
        "training: {} TIP pairs observed, {} edges labeled high-credit",
        stats.pairs, stats.edges_labeled
    );

    // 4. Protected execution.
    let mut process = deployment.launch(b"a", FlowGuardConfig::default());
    let stop = process.run(1_000_000);
    println!(
        "protected run: {stop:?}, output = {:?}, checks = {}, violation = {}",
        String::from_utf8_lossy(&process.kernel.output),
        process.stats.snapshot().checks,
        process.violated()
    );
    assert!(!process.violated(), "benign input must pass");
    Ok(())
}
