//! Trace explorer: run any bundled workload under IPT and dump the packet
//! stream, the reconstructed flow, and compression statistics — a
//! Table 2/Table 3 playground.
//!
//! Run with: `cargo run --release --example trace_explorer [workload]`
//! where `workload` is one of `tar`, `dd`, `make`, `scp`, a SPEC name
//! (`mcf`, `h264ref`, …), or `nginx` (default: `tar`).

use fg_cpu::{IptUnit, Machine, TraceUnit};
use fg_ipt::decode::PacketParser;
use fg_ipt::topa::Topa;

fn pick(name: &str) -> fg_workloads::Workload {
    match name {
        "tar" => fg_workloads::tar(),
        "dd" => fg_workloads::dd(),
        "make" => fg_workloads::make(),
        "scp" => fg_workloads::scp(),
        "nginx" => fg_workloads::nginx_patched(),
        other => fg_workloads::spec_by_name(other)
            .unwrap_or_else(|| panic!("unknown workload `{other}`")),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tar".into());
    let w = pick(&name);
    let cr3 = 0x4000;

    let mut m = Machine::new(&w.image, cr3);
    let mut unit = IptUnit::flowguard(cr3, Topa::two_regions(1 << 22).expect("topa"));
    unit.start(w.image.entry(), cr3);
    m.trace = TraceUnit::Ipt(unit);
    let mut k = fg_kernel::Kernel::with_input(&w.default_input);
    let stop = m.run(&mut k, 50_000_000);
    m.trace.as_ipt_mut().expect("ipt").flush();
    let bytes = m.trace.as_ipt().expect("ipt").trace_bytes();

    println!("== {name}: {stop:?} ==");
    println!(
        "{} instructions, {} CoFI ({:.1}%), {} trace bytes → {:.3} bits/instruction",
        m.insns_retired,
        m.cofi_retired,
        m.cofi_retired as f64 / m.insns_retired as f64 * 100.0,
        bytes.len(),
        bytes.len() as f64 * 8.0 / m.insns_retired as f64
    );

    // Packet histogram.
    let mut counts = std::collections::BTreeMap::new();
    for p in PacketParser::new(&bytes) {
        let p = p.expect("valid trace");
        *counts.entry(p.packet.mnemonic()).or_insert(0u64) += 1;
    }
    println!("\npacket histogram:");
    for (mnemonic, n) in &counts {
        println!("  {mnemonic:<10} {n}");
    }

    // First packets, Table 2 style.
    println!("\nfirst 30 packets:");
    for p in PacketParser::new(&bytes).take(30) {
        let p = p.expect("valid trace");
        println!("  {:6}  {}", p.offset, p.packet);
    }

    // Full reconstruction.
    let flow = fg_ipt::flow::FlowDecoder::new(&w.image).decode(&bytes).expect("decodes");
    println!(
        "\ninstruction-flow reconstruction: {} branches recovered, {} instructions walked",
        flow.branches.len(),
        flow.insns_walked
    );
    println!(
        "first 10 recovered transfers (note recovered direct branches — absent from packets):"
    );
    for b in flow.branches.iter().take(10) {
        println!("  {:#x} -> {:#x}  {:?}", b.from, b.to, b.kind);
    }
}
