//! # flowguard-suite — umbrella crate for the FlowGuard reproduction
//!
//! Re-exports every crate of the workspace under one roof, hosts the
//! runnable examples (`cargo run --example quickstart`) and the cross-crate
//! integration/property tests (`tests/`).
//!
//! The layering, bottom-up:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | binary substrate | [`isa`] | instruction set, assembler, PLT/GOT linker |
//! | trace hardware | [`ipt`] | packet codec, ToPA, MSRs, decoders |
//! | core | [`cpu`] | interpreter, IPT/BTS/LBR units, cost model |
//! | OS | [`kernel`] | syscalls, signals, interception hook |
//! | static analysis | [`cfg`] | O-CFG, TypeArmor, ITC-CFG, AIA |
//! | training | [`fuzz`] | AFL-style fuzzer, credit/TNT labeling |
//! | the system | [`flowguard`] | fast/slow paths, engine, deployment |
//! | evaluation | [`workloads`], [`attacks`] | servers/utilities/SPEC, exploits |
//!
//! # Examples
//!
//! The complete pipeline on a bundled workload:
//!
//! ```
//! use flowguard::{Deployment, FlowGuardConfig};
//!
//! let app = fg_workloads::tar();
//! let mut deployment = Deployment::analyze(&app.image);
//! deployment.train(&[app.default_input.clone()]);
//! let mut process = deployment.launch(&app.default_input, FlowGuardConfig::default());
//! process.run(500_000_000);
//! assert!(!process.violated());
//! ```

#![deny(unsafe_code)]

pub use fg_attacks as attacks;
pub use fg_cfg as cfg;
pub use fg_cpu as cpu;
pub use fg_fuzz as fuzz;
pub use fg_ipt as ipt;
pub use fg_isa as isa;
pub use fg_kernel as kernel;
pub use fg_workloads as workloads;
pub use flowguard;
